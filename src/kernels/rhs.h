// RHS kernel: evaluates the flux divergence of the governing equations for
// one block and accumulates it into the block's low-storage Runge-Kutta
// buffer:  tmp <- a * tmp + RHS(lab).
//
// The evaluation follows the paper's staged pipeline (Fig. 1, right):
//   CONV  conserved -> primitive on the ghost-extended lab,
//   WENO  face reconstruction of primitives (x/y/z directional sweeps),
//   HLLE  numerical flux at faces,
//   SUM   flux-difference accumulation (+ the Gamma/Pi divergence fix),
//   BACK  write-back into the block AoS tmp area.
//
// Three pipeline shapes share one expression tree:
//   kScalar    float instantiation (the paper's "C++" column, Table 7),
//   kSimd      staged: WENO faces stored to row buffers, HLLE second
//              pass (the "baseline" of Table 9),
//   kSimdFused micro-fused: WENO+HLLE+SUM per face in registers
//              (the "fused" column of Table 9).
// The vector shapes (kSimd/kSimdFused) additionally instantiate at a
// vector width — vec4 (SSE, the paper's QPX conversion) or vec8
// (AVX2+FMA, the Section 8.1 retarget) — selected at runtime by
// simd::dispatch_width() unless pinned.
#pragma once

#include "common/field3d.h"
#include "grid/block.h"
#include "grid/lab.h"
#include "simd/dispatch.h"

namespace mpcf::kernels {

enum class KernelImpl { kScalar, kSimd, kSimdFused };

/// Per-thread scratch for one block evaluation: ghost-extended primitive
/// arrays, flux-difference accumulators, and staged-WENO row buffers.
class RhsWorkspace {
 public:
  void resize(int bs, int ghosts = kGhosts);

  [[nodiscard]] int block_size() const noexcept { return bs_; }
  [[nodiscard]] int ghosts() const noexcept { return g_; }
  [[nodiscard]] int extent() const noexcept { return n_; }

  /// Primitive array q in {r,u,v,w,p,G,P} order; same ghost layout as a lab.
  [[nodiscard]] Real* prim(int q) noexcept { return prim_[q].data(); }
  [[nodiscard]] const Real* prim(int q) const noexcept { return prim_[q].data(); }
  /// Flux-difference accumulator for conserved component q.
  [[nodiscard]] Real* acc(int q) noexcept { return acc_[q].data(); }
  /// Accumulator of the face-velocity differences (Gamma/Pi correction).
  [[nodiscard]] Real* ustar() noexcept { return ustar_.data(); }
  /// Staged-WENO row buffer r in [0, 14): minus/plus faces of 7 quantities.
  [[nodiscard]] Real* row(int r) noexcept { return rows_[r].data(); }

  /// Offset of cell (ix,iy,iz), block-local, ghosts included (ix >= -g).
  [[nodiscard]] std::size_t offset(int ix, int iy, int iz) const noexcept {
    return (ix + g_) +
           static_cast<std::size_t>(n_) *
               ((iy + g_) + static_cast<std::size_t>(n_) * (iz + g_));
  }

  void zero_accumulators();

 private:
  int bs_ = 0, g_ = 0, n_ = 0;
  Field3D<Real> prim_[kNumQuantities];
  Field3D<Real> acc_[kNumQuantities];
  Field3D<Real> ustar_;
  AlignedBuffer<Real> rows_[2 * kNumQuantities];
};

/// CONV stage alone (exposed for tests and the stage-weight benchmarks).
/// `width` pins the vector width of the kSimd*/kSimdFused shapes (kAuto =
/// runtime dispatch); kScalar ignores it.
void convert_to_primitive(const BlockLab& lab, RhsWorkspace& ws, KernelImpl impl,
                          simd::Width width = simd::Width::kAuto);

/// Full RHS evaluation of one block: block.tmp <- a * block.tmp + RHS.
/// `h` is the cell spacing; `lab` must hold the block plus WENO ghosts.
/// `weno_order` selects the reconstruction (5 = production, 3 = ablation).
/// `width` pins the vector width (kAuto = runtime dispatch; ignored by
/// kScalar).
void rhs_block(const BlockLab& lab, Real h, Real a, Block& block, RhsWorkspace& ws,
               KernelImpl impl = KernelImpl::kSimdFused, int weno_order = 5,
               simd::Width width = simd::Width::kAuto);

/// Analytic FLOP count of one rhs_block call (for GFLOP/s reporting).
[[nodiscard]] double rhs_flops(int bs);

}  // namespace mpcf::kernels
