#include "kernels/sos.h"

#include <algorithm>
#include <cmath>

#include "simd/memory_ops.h"
#include "simd/scalar_ops.h"

namespace mpcf::kernels {

namespace {

/// Shared expression tree: max over the block of max(|u|,|v|,|w|) + c.
template <typename T>
double max_speed_impl(const Block& block) {
  using simd::abs;
  using simd::load_elems;
  using simd::max;
  using simd::sqrt;
  constexpr int L = simd::Lanes<T>::value;

  const std::size_t total = block.cells();
  const float* base = &block.data()->rho;
  constexpr std::size_t S = kNumQuantities;  // AoS stride in floats

  double result = 0.0;
  std::size_t i = 0;
  // AoS gather: quantities of L consecutive cells are strided loads. The QPX
  // kernel performed the same AoS->SoA shuffling (paper Section 6, DLP).
  if constexpr (L > 1) {
    T vmax = T(0.0f);
    alignas(32) float lane[7][L];
    for (; i + L <= total; i += L) {
      const float* c = base + i * S;
      for (int l = 0; l < L; ++l)
        for (int q = 0; q < 7; ++q) lane[q][l] = c[l * S + q];
      const T r = load_elems<T>(lane[0]);
      const T ru = load_elems<T>(lane[1]);
      const T rv = load_elems<T>(lane[2]);
      const T rw = load_elems<T>(lane[3]);
      const T E = load_elems<T>(lane[4]);
      const T G = load_elems<T>(lane[5]);
      const T P = load_elems<T>(lane[6]);
      const T invr = T(1.0f) / r;
      const T ke = T(0.5f) * (ru * ru + rv * rv + rw * rw) * invr;
      const T p = (E - ke - P) / G;
      const T c2 = max((p * (G + T(1.0f)) + P) / (G * r), T(0.0f));
      const T umax = max(abs(ru), max(abs(rv), abs(rw))) * invr;
      vmax = max(vmax, umax + sqrt(c2));
    }
    result = static_cast<double>(simd::hmax(vmax));
  }
  for (; i < total; ++i) {
    const Cell& c = block.data()[i];
    const double invr = 1.0 / c.rho;
    const double ke = 0.5 * (double(c.ru) * c.ru + double(c.rv) * c.rv + double(c.rw) * c.rw) * invr;
    const double p = (c.E - ke - c.P) / c.G;
    const double c2 = std::max((p * (c.G + 1.0) + c.P) / (double(c.G) * c.rho), 0.0);
    const double umax = std::max({std::fabs(double(c.ru)), std::fabs(double(c.rv)),
                                  std::fabs(double(c.rw))}) * invr;
    result = std::max(result, umax + std::sqrt(c2));
  }
  return result;
}

}  // namespace

double block_max_speed(const Block& block) { return max_speed_impl<float>(block); }

double block_max_speed_simd(const Block& block, simd::Width width) {
  switch (simd::resolve_width(width)) {
    case simd::Width::kScalar:
      return max_speed_impl<float>(block);
    case simd::Width::kW8:
      return max_speed_impl<simd::vec8>(block);
    default:
      return max_speed_impl<simd::vec4>(block);
  }
}

void block_max_speed_accumulate(const Block& block, bool simd, simd::Width width,
                                double& acc) {
  const double v = simd ? block_max_speed_simd(block, width) : block_max_speed(block);
  acc = std::max(acc, v);
}

double sos_flops(int bs) {
  // Counted from the expression tree above: ~19 arithmetic ops per cell.
  return 19.0 * bs * bs * static_cast<double>(bs);
}

}  // namespace mpcf::kernels
