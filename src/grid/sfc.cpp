#include "grid/sfc.h"

#include <algorithm>
#include <array>

namespace mpcf {

namespace {

// Spreads the low 21 bits of v so consecutive bits land 3 apart.
std::uint64_t spread3(std::uint64_t v) {
  v &= 0x1fffff;
  v = (v | v << 32) & 0x1f00000000ffffULL;
  v = (v | v << 16) & 0x1f0000ff0000ffULL;
  v = (v | v << 8) & 0x100f00f00f00f00fULL;
  v = (v | v << 4) & 0x10c30c30c30c30c3ULL;
  v = (v | v << 2) & 0x1249249249249249ULL;
  return v;
}

std::uint32_t compact3(std::uint64_t v) {
  v &= 0x1249249249249249ULL;
  v = (v ^ (v >> 2)) & 0x10c30c30c30c30c3ULL;
  v = (v ^ (v >> 4)) & 0x100f00f00f00f00fULL;
  v = (v ^ (v >> 8)) & 0x1f0000ff0000ffULL;
  v = (v ^ (v >> 16)) & 0x1f00000000ffffULL;
  v = (v ^ (v >> 32)) & 0x1fffff;
  return static_cast<std::uint32_t>(v);
}

bool is_pow2(int v) { return v > 0 && (v & (v - 1)) == 0; }

// Skilling's transpose-form Hilbert transform (J. Skilling, "Programming the
// Hilbert curve", AIP Conf. Proc. 707, 2004), 3 dimensions, b bits per axis.
void axes_to_transpose(std::uint32_t x[3], int b) {
  std::uint32_t m = 1u << (b - 1), p, q, t;
  for (q = m; q > 1; q >>= 1) {
    p = q - 1;
    for (int i = 0; i < 3; ++i) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  for (int i = 1; i < 3; ++i) x[i] ^= x[i - 1];
  t = 0;
  for (q = m; q > 1; q >>= 1)
    if (x[2] & q) t ^= q - 1;
  for (int i = 0; i < 3; ++i) x[i] ^= t;
}

void transpose_to_axes(std::uint32_t x[3], int b) {
  const std::uint32_t n = 2u << (b - 1);
  std::uint32_t p, q, t;
  t = x[2] >> 1;
  for (int i = 2; i > 0; --i) x[i] ^= x[i - 1];
  x[0] ^= t;
  for (q = 2; q != n; q <<= 1) {
    p = q - 1;
    for (int i = 2; i >= 0; --i) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
}

}  // namespace

std::uint64_t morton_encode(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
  return spread3(x) | (spread3(y) << 1) | (spread3(z) << 2);
}

void morton_decode(std::uint64_t code, std::uint32_t& x, std::uint32_t& y, std::uint32_t& z) {
  x = compact3(code);
  y = compact3(code >> 1);
  z = compact3(code >> 2);
}

std::uint64_t hilbert_encode(std::uint32_t x, std::uint32_t y, std::uint32_t z, int order) {
  require(order >= 1 && order <= 20, "hilbert_encode: order out of range");
  std::uint32_t c[3] = {x, y, z};
  axes_to_transpose(c, order);
  // Interleave the transpose-form coordinates, MSB first, axis 0 first.
  std::uint64_t code = 0;
  for (int j = order - 1; j >= 0; --j)
    for (int i = 0; i < 3; ++i) code = (code << 1) | ((c[i] >> j) & 1u);
  return code;
}

void hilbert_decode(std::uint64_t code, int order, std::uint32_t& x, std::uint32_t& y,
                    std::uint32_t& z) {
  require(order >= 1 && order <= 20, "hilbert_decode: order out of range");
  std::uint32_t c[3] = {0, 0, 0};
  for (int j = order - 1; j >= 0; --j)
    for (int i = 0; i < 3; ++i) c[i] |= static_cast<std::uint32_t>(
        (code >> (3 * j + (2 - i))) & 1u) << j;
  transpose_to_axes(c, order);
  x = c[0];
  y = c[1];
  z = c[2];
}

namespace {
int log2_int(int v) {
  int l = 0;
  while ((1 << l) < v) ++l;
  return l;
}
}  // namespace

BlockIndexer::BlockIndexer(int bx, int by, int bz) : bx_(bx), by_(by), bz_(bz) {
  require(bx > 0 && by > 0 && bz > 0, "BlockIndexer: extents must be positive");
  // SFC order stays dense (bijective onto [0, count)) only when all three
  // extents are equal powers of two.
  curve_ = (bx == by && by == bz && is_pow2(bx)) ? Curve::kMorton : Curve::kRowMajor;
}

BlockIndexer::BlockIndexer(int bx, int by, int bz, Curve curve)
    : bx_(bx), by_(by), bz_(bz), curve_(curve) {
  require(bx > 0 && by > 0 && bz > 0, "BlockIndexer: extents must be positive");
  if (curve != Curve::kRowMajor)
    require(bx == by && by == bz && is_pow2(bx),
            "BlockIndexer: SFC curves require a power-of-two cube");
}

int BlockIndexer::linear(int ix, int iy, int iz) const {
  switch (curve_) {
    case Curve::kMorton:
      return static_cast<int>(morton_encode(ix, iy, iz));
    case Curve::kHilbert:
      return static_cast<int>(hilbert_encode(ix, iy, iz, log2_int(bx_)));
    case Curve::kRowMajor:
      break;
  }
  return ix + bx_ * (iy + by_ * iz);
}

void BlockIndexer::coords(int linear_index, int& ix, int& iy, int& iz) const {
  std::uint32_t x, y, z;
  switch (curve_) {
    case Curve::kMorton:
      morton_decode(static_cast<std::uint64_t>(linear_index), x, y, z);
      ix = static_cast<int>(x);
      iy = static_cast<int>(y);
      iz = static_cast<int>(z);
      return;
    case Curve::kHilbert:
      hilbert_decode(static_cast<std::uint64_t>(linear_index), log2_int(bx_), x, y, z);
      ix = static_cast<int>(x);
      iy = static_cast<int>(y);
      iz = static_cast<int>(z);
      return;
    case Curve::kRowMajor:
      break;
  }
  ix = linear_index % bx_;
  iy = (linear_index / bx_) % by_;
  iz = linear_index / (bx_ * by_);
}

BlockTopology build_block_topology(const BlockIndexer& idx, int block_size, int ghosts,
                                   const BoundaryConditions& bc) {
  require(block_size > 0 && ghosts >= 0 && ghosts <= block_size,
          "build_block_topology: ghost depth must not exceed the block size");
  const int ext[3] = {idx.nx(), idx.ny(), idx.nz()};

  // Per-axis folded source-block sets: for a block at axis coordinate c, the
  // distinct blocks its lab coordinates [-g, bs+g) fold into along that axis.
  // Matches BlockLab::build_fold_tables entry-for-entry (source block index
  // = folded cell index / bs).
  std::array<std::vector<std::vector<int>>, 3> axis_src;
  for (int a = 0; a < 3; ++a) {
    axis_src[a].resize(ext[a]);
    const int ncells = ext[a] * block_size;
    for (int c = 0; c < ext[a]; ++c) {
      std::vector<int>& src = axis_src[a][c];
      const int origin = c * block_size;
      for (int i = -ghosts; i < block_size + ghosts; ++i) {
        const int sb = fold_index(origin + i, ncells, bc, a).i / block_size;
        if (std::find(src.begin(), src.end(), sb) == src.end()) src.push_back(sb);
      }
    }
  }

  BlockTopology topo;
  topo.count = idx.count();
  std::vector<std::vector<int>> reads(topo.count), cons(topo.count);
  for (int b = 0; b < topo.count; ++b) {
    int cx, cy, cz;
    idx.coords(b, cx, cy, cz);
    std::vector<int>& r = reads[b];
    for (const int sz : axis_src[2][cz])
      for (const int sy : axis_src[1][cy])
        for (const int sx : axis_src[0][cx]) r.push_back(idx.linear(sx, sy, sz));
    std::sort(r.begin(), r.end());
    r.erase(std::unique(r.begin(), r.end()), r.end());
  }
  for (int b = 0; b < topo.count; ++b)
    for (const int s : reads[b]) cons[s].push_back(b);

  const auto flatten = [](const std::vector<std::vector<int>>& per_block,
                          std::vector<int>& offsets, std::vector<int>& ids) {
    offsets.resize(per_block.size() + 1);
    offsets[0] = 0;
    std::size_t total = 0;
    for (std::size_t b = 0; b < per_block.size(); ++b) {
      total += per_block[b].size();
      offsets[b + 1] = static_cast<int>(total);
    }
    ids.reserve(total);
    for (const auto& v : per_block) {
      for (const int s : v) ids.push_back(s);
    }
  };
  flatten(reads, topo.read_offsets, topo.read_ids);
  flatten(cons, topo.cons_offsets, topo.cons_ids);
  return topo;
}

}  // namespace mpcf
