// The computational element. Blocks store cells in AoS format (paper Fig. 2):
// the layout is easy to extend and convert to SoA slices for vectorization.
#pragma once

#include "common/config.h"

namespace mpcf {

/// One finite-volume cell average: conserved quantities + advected EOS pair.
struct Cell {
  Real rho = 0;  ///< density
  Real ru = 0;   ///< x-momentum (rho*u)
  Real rv = 0;   ///< y-momentum
  Real rw = 0;   ///< z-momentum
  Real E = 0;    ///< total energy
  Real G = 0;    ///< Gamma = 1/(gamma-1), advected
  Real P = 0;    ///< Pi = gamma*pc/(gamma-1), advected

  [[nodiscard]] Real& q(int i) noexcept { return (&rho)[i]; }
  [[nodiscard]] const Real& q(int i) const noexcept { return (&rho)[i]; }
};

static_assert(sizeof(Cell) == kNumQuantities * sizeof(Real),
              "Cell must be a dense array of quantities");

inline Cell operator+(const Cell& a, const Cell& b) noexcept {
  Cell r;
  for (int i = 0; i < kNumQuantities; ++i) r.q(i) = a.q(i) + b.q(i);
  return r;
}

inline Cell operator*(Real s, const Cell& a) noexcept {
  Cell r;
  for (int i = 0; i < kNumQuantities; ++i) r.q(i) = s * a.q(i);
  return r;
}

}  // namespace mpcf
