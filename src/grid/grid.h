// Uniform-resolution block-structured grid: the computational domain is a
// box of bx*by*bz blocks of bs^3 cells each, stored along a space-filling
// curve (paper Section 5). Cell spacing is uniform and cubic.
#pragma once

#include <vector>

#include "common/check.h"
#include "common/error.h"
#include "grid/block.h"
#include "grid/boundary.h"
#include "grid/sfc.h"

namespace mpcf {

class Grid {
 public:
  /// Grid of bx*by*bz blocks of bs^3 cells over a domain whose x-extent is
  /// `extent_x` (y/z extents follow from cubic cells). The block storage
  /// order defaults to Morton for power-of-two cubes (row-major otherwise);
  /// pass a curve explicitly to override (e.g. Hilbert, for the SFC
  /// ablation).
  Grid(int bx, int by, int bz, int bs, double extent_x = 1.0);
  Grid(int bx, int by, int bz, int bs, double extent_x, BlockIndexer::Curve curve);

  [[nodiscard]] int blocks_x() const noexcept { return indexer_.nx(); }
  [[nodiscard]] int blocks_y() const noexcept { return indexer_.ny(); }
  [[nodiscard]] int blocks_z() const noexcept { return indexer_.nz(); }
  [[nodiscard]] int block_count() const noexcept { return indexer_.count(); }
  [[nodiscard]] int block_size() const noexcept { return bs_; }
  [[nodiscard]] const BlockIndexer& indexer() const noexcept { return indexer_; }

  [[nodiscard]] int cells_x() const noexcept { return indexer_.nx() * bs_; }
  [[nodiscard]] int cells_y() const noexcept { return indexer_.ny() * bs_; }
  [[nodiscard]] int cells_z() const noexcept { return indexer_.nz() * bs_; }
  [[nodiscard]] std::size_t cell_count() const noexcept {
    return static_cast<std::size_t>(cells_x()) * cells_y() * cells_z();
  }

  /// Uniform cell spacing.
  [[nodiscard]] double h() const noexcept { return h_; }

  /// Cell-center coordinate of global cell index along an axis.
  [[nodiscard]] double cell_center(int i) const noexcept { return (i + 0.5) * h_; }

  [[nodiscard]] Block& block(int linear_index) MPCF_NOEXCEPT {
    MPCF_CHECK(linear_index >= 0 && linear_index < block_count(),
               "Grid block " + std::to_string(linear_index) + " outside [0," +
                   std::to_string(block_count()) + ")");
    return blocks_[linear_index];
  }
  [[nodiscard]] const Block& block(int linear_index) const MPCF_NOEXCEPT {
    MPCF_CHECK(linear_index >= 0 && linear_index < block_count(),
               "Grid block " + std::to_string(linear_index) + " outside [0," +
                   std::to_string(block_count()) + ")");
    return blocks_[linear_index];
  }
  [[nodiscard]] Block& block(int ix, int iy, int iz) noexcept {
    return blocks_[indexer_.linear(ix, iy, iz)];
  }
  [[nodiscard]] const Block& block(int ix, int iy, int iz) const noexcept {
    return blocks_[indexer_.linear(ix, iy, iz)];
  }

  /// Access to a cell by global cell coordinates (must be inside the domain).
  [[nodiscard]] Cell& cell(int ix, int iy, int iz) MPCF_NOEXCEPT {
    MPCF_CHECK(ix >= 0 && ix < cells_x() && iy >= 0 && iy < cells_y() && iz >= 0 &&
                   iz < cells_z(),
               "Grid cell (" + std::to_string(ix) + "," + std::to_string(iy) + "," +
                   std::to_string(iz) + ") outside the domain");
    Block& b = block(ix / bs_, iy / bs_, iz / bs_);
    return b(ix % bs_, iy % bs_, iz % bs_);
  }
  [[nodiscard]] const Cell& cell(int ix, int iy, int iz) const MPCF_NOEXCEPT {
    MPCF_CHECK(ix >= 0 && ix < cells_x() && iy >= 0 && iy < cells_y() && iz >= 0 &&
                   iz < cells_z(),
               "Grid cell (" + std::to_string(ix) + "," + std::to_string(iy) + "," +
                   std::to_string(iz) + ") outside the domain");
    const Block& b = block(ix / bs_, iy / bs_, iz / bs_);
    return b(ix % bs_, iy % bs_, iz % bs_);
  }

  /// Ghost-aware cell fetch: folds out-of-domain coordinates through the
  /// boundary conditions and applies momentum sign flips.
  [[nodiscard]] Cell cell_folded(int ix, int iy, int iz, const BoundaryConditions& bc) const {
    const FoldedIndex fx = fold_index(ix, cells_x(), bc, 0);
    const FoldedIndex fy = fold_index(iy, cells_y(), bc, 1);
    const FoldedIndex fz = fold_index(iz, cells_z(), bc, 2);
    Cell c = cell(fx.i, fy.i, fz.i);
    c.ru *= fx.mom_sign;
    c.rv *= fy.mom_sign;
    c.rw *= fz.mom_sign;
    return c;
  }

 private:
  BlockIndexer indexer_;
  int bs_;
  double h_;
  std::vector<Block> blocks_;
};

}  // namespace mpcf
