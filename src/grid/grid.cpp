#include "grid/grid.h"

namespace mpcf {

Grid::Grid(int bx, int by, int bz, int bs, double extent_x)
    : indexer_(bx, by, bz), bs_(bs), h_(extent_x / (static_cast<double>(bx) * bs)) {
  require(bs > 0, "Grid: block size must be positive");
  require(extent_x > 0.0, "Grid: domain extent must be positive");
  blocks_.reserve(indexer_.count());
  for (int i = 0; i < indexer_.count(); ++i) blocks_.emplace_back(bs);
}

Grid::Grid(int bx, int by, int bz, int bs, double extent_x, BlockIndexer::Curve curve)
    : indexer_(bx, by, bz, curve), bs_(bs),
      h_(extent_x / (static_cast<double>(bx) * bs)) {
  require(bs > 0, "Grid: block size must be positive");
  require(extent_x > 0.0, "Grid: domain extent must be positive");
  blocks_.reserve(indexer_.count());
  for (int i = 0; i < indexer_.count(); ++i) blocks_.emplace_back(bs);
}

}  // namespace mpcf
