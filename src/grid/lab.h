// BlockLab: a per-thread working copy of one block extended by the ghost
// layer required by the WENO5 stencil, converted from the AoS block storage
// into SoA arrays (paper Fig. 2: "AoS/SoA conversion during the evaluation of
// the RHS"). Each OpenMP thread owns one lab and reuses its memory across
// blocks (paper Section 6, node layer).
#pragma once

#include <concepts>
#include <cstddef>

#include "common/aligned_buffer.h"
#include "common/config.h"
#include "grid/boundary.h"
#include "grid/grid.h"

namespace mpcf {

class BlockLab {
 public:
  BlockLab() = default;

  /// Allocates storage for a block of edge `bs` with `ghosts` ghost cells.
  void resize(int bs, int ghosts = kGhosts) {
    require(bs > 0 && ghosts >= 0, "BlockLab: bad extents");
    bs_ = bs;
    g_ = ghosts;
    n_ = bs + 2 * ghosts;
    const std::size_t per_q = static_cast<std::size_t>(n_) * n_ * n_;
    storage_.reset(per_q * kNumQuantities);
    per_q_ = per_q;
  }

  [[nodiscard]] int block_size() const noexcept { return bs_; }
  [[nodiscard]] int ghosts() const noexcept { return g_; }
  /// Extended edge length (bs + 2*ghosts).
  [[nodiscard]] int extent() const noexcept { return n_; }

  /// Quantity plane base pointer (SoA).
  [[nodiscard]] Real* q(int quantity) noexcept { return storage_.data() + quantity * per_q_; }
  [[nodiscard]] const Real* q(int quantity) const noexcept {
    return storage_.data() + quantity * per_q_;
  }

  /// Element access with block-local coordinates in [-ghosts, bs+ghosts).
  [[nodiscard]] Real& operator()(int quantity, int ix, int iy, int iz) noexcept {
    return q(quantity)[offset(ix, iy, iz)];
  }
  [[nodiscard]] const Real& operator()(int quantity, int ix, int iy, int iz) const noexcept {
    return q(quantity)[offset(ix, iy, iz)];
  }

  [[nodiscard]] std::size_t offset(int ix, int iy, int iz) const noexcept {
    return (ix + g_) +
           static_cast<std::size_t>(n_) *
               ((iy + g_) + static_cast<std::size_t>(n_) * (iz + g_));
  }

  /// Loads block (bx,by,bz) of `grid` plus ghosts. `fetch(ix,iy,iz) -> Cell`
  /// must resolve any global cell coordinate outside this block (other
  /// blocks, domain boundaries, or — in the cluster layer — halo buffers).
  template <typename Fetch>
    requires std::invocable<Fetch&, int, int, int>
  void load(const Grid& grid, int bx, int by, int bz, Fetch&& fetch) {
    const Block& block = grid.block(bx, by, bz);
    const int ox = bx * bs_, oy = by * bs_, oz = bz * bs_;
    for (int iz = -g_; iz < bs_ + g_; ++iz)
      for (int iy = -g_; iy < bs_ + g_; ++iy)
        for (int ix = -g_; ix < bs_ + g_; ++ix) {
          const bool interior = ix >= 0 && ix < bs_ && iy >= 0 && iy < bs_ &&
                                iz >= 0 && iz < bs_;
          const Cell c =
              interior ? block(ix, iy, iz) : fetch(ox + ix, oy + iy, oz + iz);
          const std::size_t o = offset(ix, iy, iz);
          Real* base = storage_.data();
          for (int k = 0; k < kNumQuantities; ++k) base[k * per_q_ + o] = c.q(k);
        }
  }

  /// Node-layer load: ghosts resolved from neighbouring blocks of the same
  /// grid, folded through the domain boundary conditions.
  void load(const Grid& grid, int bx, int by, int bz, const BoundaryConditions& bc) {
    load(grid, bx, by, bz,
         [&](int ix, int iy, int iz) { return grid.cell_folded(ix, iy, iz, bc); });
  }

 private:
  int bs_ = 0, g_ = 0, n_ = 0;
  std::size_t per_q_ = 0;
  AlignedBuffer<Real> storage_;
};

}  // namespace mpcf
