// BlockLab: a per-thread working copy of one block extended by the ghost
// layer required by the WENO5 stencil, converted from the AoS block storage
// into SoA arrays (paper Fig. 2: "AoS/SoA conversion during the evaluation of
// the RHS"). Each OpenMP thread owns one lab and reuses its memory across
// blocks (paper Section 6, node layer).
//
// Two assembly paths fill a lab:
//  - load(..., Fetch&&): the per-cell reference path — every ghost cell goes
//    through a fetch callback. Kept as the differential-testing oracle.
//  - load(..., bc [, override]): bulk assembly — the interior transposes
//    row-by-row straight out of the source block, and ghost cells resolve
//    through per-axis fold tables computed once per load (BCs folded
//    per-axis-entry, not per-cell). Only cells whose unfolded coordinates
//    leave the grid's domain are routed through the optional override
//    callback (the cluster layer's out-of-rank intercept).
#pragma once

#include <algorithm>
#include <concepts>
#include <cstddef>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/check.h"
#include "common/config.h"
#include "grid/boundary.h"
#include "grid/grid.h"
#include "simd/vec8.h"  // MPCF_SIMD_AVX2 + intrinsics for the AoS->SoA transpose

namespace mpcf {

class BlockLab {
 public:
  BlockLab() = default;

  /// Allocates storage for a block of edge `bs` with `ghosts` ghost cells.
  void resize(int bs, int ghosts = kGhosts) {
    require(bs > 0 && ghosts >= 0, "BlockLab: bad extents");
    bs_ = bs;
    g_ = ghosts;
    n_ = bs + 2 * ghosts;
    const std::size_t per_q = static_cast<std::size_t>(n_) * n_ * n_;
    storage_.reset(per_q * kNumQuantities);
    per_q_ = per_q;
    // mpcf-lint: allow(kernel-alloc): one-time lab (re)allocation; load() reuses these tables per block
    for (auto& t : fold_) t.resize(n_);
  }

  [[nodiscard]] int block_size() const noexcept { return bs_; }
  [[nodiscard]] int ghosts() const noexcept { return g_; }
  /// Extended edge length (bs + 2*ghosts).
  [[nodiscard]] int extent() const noexcept { return n_; }

  /// Quantity plane base pointer (SoA).
  [[nodiscard]] Real* q(int quantity) noexcept { return storage_.data() + quantity * per_q_; }
  [[nodiscard]] const Real* q(int quantity) const noexcept {
    return storage_.data() + quantity * per_q_;
  }

  /// Element access with block-local coordinates in [-ghosts, bs+ghosts).
  [[nodiscard]] Real& operator()(int quantity, int ix, int iy, int iz) MPCF_NOEXCEPT {
    MPCF_CHECK(quantity >= 0 && quantity < kNumQuantities,
               "BlockLab quantity " + std::to_string(quantity));
    return q(quantity)[offset(ix, iy, iz)];
  }
  [[nodiscard]] const Real& operator()(int quantity, int ix, int iy,
                                       int iz) const MPCF_NOEXCEPT {
    MPCF_CHECK(quantity >= 0 && quantity < kNumQuantities,
               "BlockLab quantity " + std::to_string(quantity));
    return q(quantity)[offset(ix, iy, iz)];
  }

  [[nodiscard]] std::size_t offset(int ix, int iy, int iz) const MPCF_NOEXCEPT {
    MPCF_CHECK(ix >= -g_ && ix < bs_ + g_ && iy >= -g_ && iy < bs_ + g_ &&
                   iz >= -g_ && iz < bs_ + g_,
               "BlockLab cell (" + std::to_string(ix) + "," + std::to_string(iy) +
                   "," + std::to_string(iz) + ") outside [" + std::to_string(-g_) +
                   "," + std::to_string(bs_ + g_) + ")^3");
    return (ix + g_) +
           static_cast<std::size_t>(n_) *
               ((iy + g_) + static_cast<std::size_t>(n_) * (iz + g_));
  }

  /// Per-cell reference path: loads block (bx,by,bz) of `grid` plus ghosts.
  /// `fetch(ix,iy,iz) -> Cell` must resolve any global cell coordinate
  /// outside this block (other blocks, domain boundaries, or — in the
  /// cluster layer — halo buffers).
  template <typename Fetch>
    requires std::invocable<Fetch&, int, int, int>
  void load(const Grid& grid, int bx, int by, int bz, Fetch&& fetch) {
    const Block& block = grid.block(bx, by, bz);
    const int ox = bx * bs_, oy = by * bs_, oz = bz * bs_;
    for (int iz = -g_; iz < bs_ + g_; ++iz)
      for (int iy = -g_; iy < bs_ + g_; ++iy)
        for (int ix = -g_; ix < bs_ + g_; ++ix) {
          const bool interior = ix >= 0 && ix < bs_ && iy >= 0 && iy < bs_ &&
                                iz >= 0 && iz < bs_;
          const Cell c =
              interior ? block(ix, iy, iz) : fetch(ox + ix, oy + iy, oz + iz);
          const std::size_t o = offset(ix, iy, iz);
          Real* base = storage_.data();
          for (int k = 0; k < kNumQuantities; ++k) base[k * per_q_ + o] = c.q(k);
        }
  }

  /// Bulk assembly: interior rows transpose straight from the source block;
  /// ghost cells resolve through per-axis fold tables (BCs folded once per
  /// axis entry). `override_fn`, when non-null, intercepts cells whose
  /// unfolded global coordinates fall outside the grid's domain (the cluster
  /// layer's out-of-rank ghosts); when it declines (returns false) the cell
  /// falls back to the locally folded value, matching the per-cell path.
  template <typename Override>
  void load(const Grid& grid, int bx, int by, int bz, const BoundaryConditions& bc,
            const Override* override_fn) {
    const Block& block = grid.block(bx, by, bz);
    const int origin[3] = {bx * bs_, by * bs_, bz * bs_};
    build_fold_tables(grid, origin, bc);

    // Interior: row-by-row AoS -> SoA transpose, no index folding at all.
    for (int iz = 0; iz < bs_; ++iz)
      for (int iy = 0; iy < bs_; ++iy)
        copy_row_transposed(&block(0, iy, iz), offset(0, iy, iz), bs_, Real(1), Real(1));

    // X-edge ghosts of interior rows: the y/z folds are identity there, so
    // the folded source block is constant over the whole face — sweep the
    // rows once with all per-column constants hoisted.
    const int bs = bs_;
    fill_x_edges(grid, origin, by, bz, override_fn);

    // Remaining ghost shell: rows whose y/z coordinate is itself a ghost.
    // Their x-interior span [0, bs) never folds along x, so it is one
    // contiguous cell run of a single source block and goes through the same
    // transposed copy as interior rows (with the row's y/z momentum signs
    // applied); only when an override could intercept the row does it stay
    // per-cell.
    for (int iz = -g_; iz < bs + g_; ++iz)
      for (int iy = -g_; iy < bs + g_; ++iy) {
        if (iy >= 0 && iy < bs && iz >= 0 && iz < bs) continue;  // handled above
        fill_ghost_span(grid, origin, -g_, 0, iy, iz, override_fn);
        const Fold& fy = fold_[1][iy + g_];
        const Fold& fz = fold_[2][iz + g_];
        if (override_fn == nullptr || !(fy.outside || fz.outside)) {
          const Cell* src = &grid.block(bx, fy.block, fz.block)(0, fy.cell, fz.cell);
          copy_row_transposed(src, offset(0, iy, iz), bs, fy.sign, fz.sign);
        } else {
          fill_ghost_span(grid, origin, 0, bs, iy, iz, override_fn);
        }
        fill_ghost_span(grid, origin, bs, bs + g_, iy, iz, override_fn);
      }
  }

  /// Node-layer bulk load: ghosts resolved from neighbouring blocks of the
  /// same grid, folded through the domain boundary conditions.
  void load(const Grid& grid, int bx, int by, int bz, const BoundaryConditions& bc) {
    load(grid, bx, by, bz, bc, static_cast<const NoOverride*>(nullptr));
  }

  /// Consumption hook for the fused step scheduler: the set of source blocks
  /// the last bulk load() may have read, linearized through `idx` and
  /// appended to `out` sorted ascending (out is cleared first). Computed as
  /// the product of the per-axis fold tables, so it is a conservative
  /// superset of the actual reads (an override interception still counts its
  /// locally folded block). Valid only after a bulk load; the per-cell
  /// oracle path does not build fold tables. The scheduler cross-validates
  /// this against BlockTopology::readset under MPCF_CHECKED.
  void read_block_set(const BlockIndexer& idx, std::vector<int>& out) const {
    out.clear();
    // Distinct per-axis source blocks, in fold-table order.
    // mpcf-lint: allow(kernel-alloc): MPCF_CHECKED-only validation path, not a kernel loop
    std::vector<int> ax[3];
    for (int a = 0; a < 3; ++a) {
      for (int i = 0; i < n_; ++i) {
        const int b = fold_[a][i].block;
        bool seen = false;
        for (const int e : ax[a]) seen = seen || e == b;
        // mpcf-lint: allow(kernel-alloc): MPCF_CHECKED-only validation path, not a kernel loop
        if (!seen) ax[a].push_back(b);
      }
    }
    for (const int bz : ax[2])
      for (const int by : ax[1])
        // mpcf-lint: allow(kernel-alloc): MPCF_CHECKED-only validation path, not a kernel loop
        for (const int bx : ax[0]) out.push_back(idx.linear(bx, by, bz));
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }

 private:
  /// Placeholder override type for the no-override bulk load.
  struct NoOverride {
    bool operator()(int, int, int, Cell&) const noexcept { return false; }
  };

  /// Fold table entry for one lab coordinate along one axis.
  struct Fold {
    int block;      ///< source block index along the axis
    int cell;       ///< source cell index within that block
    Real sign;      ///< momentum sign of the axis component
    bool outside;   ///< unfolded coordinate lies outside the grid's domain
  };

  void build_fold_tables(const Grid& grid, const int origin[3],
                         const BoundaryConditions& bc) {
    const int ncells[3] = {grid.cells_x(), grid.cells_y(), grid.cells_z()};
    for (int a = 0; a < 3; ++a) {
      std::vector<Fold>& t = fold_[a];
      for (int i = -g_; i < bs_ + g_; ++i) {
        const int gcoord = origin[a] + i;
        const FoldedIndex f = fold_index(gcoord, ncells[a], bc, a);
        t[i + g_] = Fold{f.i / bs_, f.i % bs_, f.mom_sign,
                         gcoord < 0 || gcoord >= ncells[a]};
      }
    }
  }

#if MPCF_SIMD_AVX2
  /// In-register 8x8 transpose of 8 AoS cell rows into the 7 quantity
  /// vectors (the transposed column 7 is garbage and is never produced).
  static void transpose8(__m256 r0, __m256 r1, __m256 r2, __m256 r3, __m256 r4,
                         __m256 r5, __m256 r6, __m256 r7,
                         __m256 qv[kNumQuantities]) noexcept {
    const __m256 t0 = _mm256_unpacklo_ps(r0, r1);
    const __m256 t1 = _mm256_unpackhi_ps(r0, r1);
    const __m256 t2 = _mm256_unpacklo_ps(r2, r3);
    const __m256 t3 = _mm256_unpackhi_ps(r2, r3);
    const __m256 t4 = _mm256_unpacklo_ps(r4, r5);
    const __m256 t5 = _mm256_unpackhi_ps(r4, r5);
    const __m256 t6 = _mm256_unpacklo_ps(r6, r7);
    const __m256 t7 = _mm256_unpackhi_ps(r6, r7);
    const __m256 u0 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 u1 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 u2 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 u3 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 u4 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 u5 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 u6 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 u7 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(3, 2, 3, 2));
    qv[0] = _mm256_permute2f128_ps(u0, u4, 0x20);
    qv[1] = _mm256_permute2f128_ps(u1, u5, 0x20);
    qv[2] = _mm256_permute2f128_ps(u2, u6, 0x20);
    qv[3] = _mm256_permute2f128_ps(u3, u7, 0x20);
    qv[4] = _mm256_permute2f128_ps(u0, u4, 0x31);
    qv[5] = _mm256_permute2f128_ps(u1, u5, 0x31);
    qv[6] = _mm256_permute2f128_ps(u2, u6, 0x31);
  }
#endif

  /// Transposes `count` consecutive AoS source cells into the SoA quantity
  /// planes at destination offset `o`, scaling the y/z momentum by the row's
  /// fold signs. The workhorse of bulk assembly: interior rows and the
  /// unfolded x-span of ghost rows are contiguous cell runs in some source
  /// block and funnel through here.
  void copy_row_transposed(const Cell* src, std::size_t o, int count, Real sy, Real sz) {
    Real* const base = storage_.data();
    int c = 0;
#if MPCF_SIMD_AVX2
    // Groups of 8 cells: row i holds cell i's 7 quantities (the overlapping
    // unaligned load picks up the first float of cell i+1 in lane 7). Row 7
    // uses a masked 7-float load so a group ending on the last cell of a
    // block never reads past its storage.
    const __m256i mask7 = _mm256_setr_epi32(-1, -1, -1, -1, -1, -1, -1, 0);
    const __m256 vsy = _mm256_set1_ps(sy), vsz = _mm256_set1_ps(sz);
    const bool flip = sy != Real(1) || sz != Real(1);
    __m256 qv[kNumQuantities];
    for (; c + 8 <= count; c += 8) {
      const float* fp = &src[c].rho;
      transpose8(_mm256_loadu_ps(fp), _mm256_loadu_ps(fp + 7), _mm256_loadu_ps(fp + 14),
                 _mm256_loadu_ps(fp + 21), _mm256_loadu_ps(fp + 28),
                 _mm256_loadu_ps(fp + 35), _mm256_loadu_ps(fp + 42),
                 _mm256_maskload_ps(fp + 49, mask7), qv);
      if (flip) {
        qv[2] = _mm256_mul_ps(qv[2], vsy);  // rv
        qv[3] = _mm256_mul_ps(qv[3], vsz);  // rw
      }
      for (int k = 0; k < kNumQuantities; ++k)
        _mm256_storeu_ps(base + k * per_q_ + o + c, qv[k]);
    }
#endif
    for (; c < count; ++c) {
      Cell cell = src[c];
      cell.rv *= sy;
      cell.rw *= sz;
      const std::size_t oc = o + c;
      for (int k = 0; k < kNumQuantities; ++k) base[k * per_q_ + oc] = cell.q(k);
    }
  }

  /// Fills the 2*g x-ghost columns of every interior row in one sweep. The
  /// y/z folds are identity on those rows, so each column's source block,
  /// source x-cell, and momentum sign are constant over the whole face and
  /// resolve once; the row loop then copies 2*g cells per row while the
  /// destination cache lines are hot. Columns whose unfolded coordinate
  /// leaves the domain are offered to the override first (cluster intercept).
  template <typename Override>
  void fill_x_edges(const Grid& grid, const int origin[3], int by, int bz,
                    const Override* override_fn) {
    struct Col {
      const Cell* cells;    ///< source block data (same by/bz as the lab's block)
      int cell;             ///< folded source x-cell
      int gx;               ///< unfolded global x (override coordinate)
      std::size_t doff;     ///< lab-row-relative destination offset
      Real sign;            ///< x-momentum sign
      bool routed;          ///< offer to the override first
    };
    const int ncols = 2 * g_;
    std::vector<Col> cols(ncols);
    for (int j = 0; j < ncols; ++j) {
      const int ix = j < g_ ? j - g_ : bs_ + j - g_;
      const Fold& fx = fold_[0][ix + g_];
      cols[j] = Col{grid.block(fx.block, by, bz).data(), fx.cell, origin[0] + ix,
                    static_cast<std::size_t>(j < g_ ? j : bs_ + j), fx.sign,
                    override_fn != nullptr && fx.outside};
    }

    Real* const base = storage_.data();
    const std::size_t bs = static_cast<std::size_t>(bs_);
    for (int iz = 0; iz < bs_; ++iz) {
      std::size_t o_row = offset(-g_, 0, iz);
      std::size_t s_row = bs * bs * iz;
      for (int iy = 0; iy < bs_; ++iy, o_row += n_, s_row += bs) {
        for (int j = 0; j < ncols; ++j) {
          const Col& cl = cols[j];
          const std::size_t o = o_row + cl.doff;
          if (cl.routed) {
            Cell c;
            if ((*override_fn)(cl.gx, origin[1] + iy, origin[2] + iz, c)) {
              for (int k = 0; k < kNumQuantities; ++k) base[k * per_q_ + o] = c.q(k);
              continue;
            }
          }
          Cell c = cl.cells[s_row + cl.cell];
          c.ru *= cl.sign;
          for (int k = 0; k < kNumQuantities; ++k) base[k * per_q_ + o] = c.q(k);
        }
      }
    }
  }

  /// Fills lab cells [x0, x1) of row (iy, iz); every cell in the span is a
  /// ghost. Hoists the source-block lookup across runs of constant x-block.
  template <typename Override>
  void fill_ghost_span(const Grid& grid, const int origin[3], int x0, int x1,
                       int iy, int iz, const Override* override_fn) {
    const Fold& fy = fold_[1][iy + g_];
    const Fold& fz = fold_[2][iz + g_];
    const bool row_outside = fy.outside || fz.outside;
    const std::size_t in_block_yz =
        static_cast<std::size_t>(bs_) * (fy.cell + static_cast<std::size_t>(bs_) * fz.cell);
    Real* const base = storage_.data();

    const Cell* block_cells = nullptr;
    int cached_bx = -1;
    const Fold* const fxs = fold_[0].data() + g_;
    std::size_t o = offset(x0, iy, iz);
    for (int ix = x0; ix < x1; ++ix, ++o) {
      const Fold& fx = fxs[ix];
      if (override_fn != nullptr && (row_outside || fx.outside)) {
        Cell c;
        if ((*override_fn)(origin[0] + ix, origin[1] + iy, origin[2] + iz, c)) {
          for (int k = 0; k < kNumQuantities; ++k) base[k * per_q_ + o] = c.q(k);
          continue;
        }
      }
      if (fx.block != cached_bx) {
        cached_bx = fx.block;
        block_cells = grid.block(fx.block, fy.block, fz.block).data();
      }
      Cell c = block_cells[fx.cell + in_block_yz];
      c.ru *= fx.sign;
      c.rv *= fy.sign;
      c.rw *= fz.sign;
      for (int k = 0; k < kNumQuantities; ++k) base[k * per_q_ + o] = c.q(k);
    }
  }

  int bs_ = 0, g_ = 0, n_ = 0;
  std::size_t per_q_ = 0;
  AlignedBuffer<Real> storage_;
  std::vector<Fold> fold_[3];  ///< per-axis fold tables, rebuilt per load
};

}  // namespace mpcf
