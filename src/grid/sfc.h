// Space-filling-curve reindexing of grid blocks (paper Section 5: "grouping
// the computational elements into 3D blocks ... and reindexing the blocks
// with a space-filling curve"). Morton (Z-order) for power-of-two block
// grids, row-major fallback otherwise; both expose the same interface.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"
#include "grid/boundary.h"

namespace mpcf {

/// Interleaves the low 21 bits of x,y,z into a 63-bit Morton code.
[[nodiscard]] std::uint64_t morton_encode(std::uint32_t x, std::uint32_t y, std::uint32_t z);

/// Inverse of morton_encode.
void morton_decode(std::uint64_t code, std::uint32_t& x, std::uint32_t& y, std::uint32_t& z);

/// 3-D Hilbert curve over a 2^order cube: better neighbour locality than
/// Morton at the cost of a more expensive index computation (the paper's
/// outlook questions whether two-level Morton indexing provides adequate
/// locality on future machines; Hilbert is the natural alternative).
[[nodiscard]] std::uint64_t hilbert_encode(std::uint32_t x, std::uint32_t y, std::uint32_t z,
                                           int order);
void hilbert_decode(std::uint64_t code, int order, std::uint32_t& x, std::uint32_t& y,
                    std::uint32_t& z);

/// Maps 3-D block coordinates to a linear storage index and back.
class BlockIndexer {
 public:
  enum class Curve { kMorton, kRowMajor, kHilbert };

  BlockIndexer() = default;
  BlockIndexer(int bx, int by, int bz);
  /// Forces a specific curve; kMorton/kHilbert require a power-of-two cube.
  BlockIndexer(int bx, int by, int bz, Curve curve);

  [[nodiscard]] int nx() const noexcept { return bx_; }
  [[nodiscard]] int ny() const noexcept { return by_; }
  [[nodiscard]] int nz() const noexcept { return bz_; }
  [[nodiscard]] int count() const noexcept { return bx_ * by_ * bz_; }
  [[nodiscard]] Curve curve() const noexcept { return curve_; }

  /// Linear index of block (ix,iy,iz); Morton order when the grid is a
  /// power-of-two cube, row-major otherwise.
  [[nodiscard]] int linear(int ix, int iy, int iz) const;

  /// Inverse: block coordinates of linear index.
  void coords(int linear_index, int& ix, int& iy, int& iz) const;

 private:
  int bx_ = 0, by_ = 0, bz_ = 0;
  Curve curve_ = Curve::kRowMajor;
};

/// Block-dependency topology of a grid under its boundary conditions: for
/// every block b, `readset(b)` is the set of source blocks b's ghost-lab
/// assembly may read, and `consumers(b)` is the transpose — the blocks whose
/// labs read b's data. The fused step scheduler seeds its per-stage
/// dependency counters from these sets (DESIGN.md §14).
///
/// The readset is derived from the same per-axis index folding BlockLab's
/// bulk assembly uses (fold_index over the ghost-extended coordinate range),
/// as the product of the three per-axis folded source-block sets — an exact
/// superset of every grid read the assembly performs, including the cluster
/// override's clamp path (clamping equals the absorbing fold). Both
/// relations always contain b itself; neither is assumed symmetric (BC
/// folding breaks symmetry at domain faces), so the transpose is explicit.
struct BlockTopology {
  int count = 0;
  std::vector<int> read_offsets;  ///< CSR offsets into read_ids, size count+1
  std::vector<int> read_ids;      ///< ascending within each block's span
  std::vector<int> cons_offsets;  ///< CSR offsets into cons_ids, size count+1
  std::vector<int> cons_ids;      ///< ascending within each block's span

  [[nodiscard]] std::span<const int> readset(int b) const {
    return {read_ids.data() + read_offsets[b],
            static_cast<std::size_t>(read_offsets[b + 1] - read_offsets[b])};
  }
  [[nodiscard]] std::span<const int> consumers(int b) const {
    return {cons_ids.data() + cons_offsets[b],
            static_cast<std::size_t>(cons_offsets[b + 1] - cons_offsets[b])};
  }
};

/// Builds the readset/consumer tables for blocks of edge `block_size` with
/// `ghosts` ghost layers, indexed by `idx`, under boundary conditions `bc`.
[[nodiscard]] BlockTopology build_block_topology(const BlockIndexer& idx, int block_size,
                                                 int ghosts, const BoundaryConditions& bc);

}  // namespace mpcf
