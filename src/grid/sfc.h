// Space-filling-curve reindexing of grid blocks (paper Section 5: "grouping
// the computational elements into 3D blocks ... and reindexing the blocks
// with a space-filling curve"). Morton (Z-order) for power-of-two block
// grids, row-major fallback otherwise; both expose the same interface.
#pragma once

#include <cstdint>

#include "common/error.h"

namespace mpcf {

/// Interleaves the low 21 bits of x,y,z into a 63-bit Morton code.
[[nodiscard]] std::uint64_t morton_encode(std::uint32_t x, std::uint32_t y, std::uint32_t z);

/// Inverse of morton_encode.
void morton_decode(std::uint64_t code, std::uint32_t& x, std::uint32_t& y, std::uint32_t& z);

/// 3-D Hilbert curve over a 2^order cube: better neighbour locality than
/// Morton at the cost of a more expensive index computation (the paper's
/// outlook questions whether two-level Morton indexing provides adequate
/// locality on future machines; Hilbert is the natural alternative).
[[nodiscard]] std::uint64_t hilbert_encode(std::uint32_t x, std::uint32_t y, std::uint32_t z,
                                           int order);
void hilbert_decode(std::uint64_t code, int order, std::uint32_t& x, std::uint32_t& y,
                    std::uint32_t& z);

/// Maps 3-D block coordinates to a linear storage index and back.
class BlockIndexer {
 public:
  enum class Curve { kMorton, kRowMajor, kHilbert };

  BlockIndexer() = default;
  BlockIndexer(int bx, int by, int bz);
  /// Forces a specific curve; kMorton/kHilbert require a power-of-two cube.
  BlockIndexer(int bx, int by, int bz, Curve curve);

  [[nodiscard]] int nx() const noexcept { return bx_; }
  [[nodiscard]] int ny() const noexcept { return by_; }
  [[nodiscard]] int nz() const noexcept { return bz_; }
  [[nodiscard]] int count() const noexcept { return bx_ * by_ * bz_; }
  [[nodiscard]] Curve curve() const noexcept { return curve_; }

  /// Linear index of block (ix,iy,iz); Morton order when the grid is a
  /// power-of-two cube, row-major otherwise.
  [[nodiscard]] int linear(int ix, int iy, int iz) const;

  /// Inverse: block coordinates of linear index.
  void coords(int linear_index, int& ix, int& iy, int& iz) const;

 private:
  int bx_ = 0, by_ = 0, bz_ = 0;
  Curve curve_ = Curve::kRowMajor;
};

}  // namespace mpcf
