// A grid block: bs^3 cells in AoS layout plus a temporary area used as the
// RHS accumulator of the low-storage Runge-Kutta scheme (paper Fig. 2).
#pragma once

#include "common/aligned_buffer.h"
#include "common/check.h"
#include "common/error.h"
#include "grid/cell.h"

namespace mpcf {

class Block {
 public:
  Block() = default;
  explicit Block(int bs)
      : bs_(bs),
        data_(static_cast<std::size_t>(bs) * bs * bs),
        tmp_(static_cast<std::size_t>(bs) * bs * bs) {
    require(bs > 0, "Block: block size must be positive");
    for (auto& c : data_) c = Cell{};
    for (auto& c : tmp_) c = Cell{};
  }

  [[nodiscard]] int size() const noexcept { return bs_; }
  [[nodiscard]] std::size_t cells() const noexcept { return data_.size(); }

  [[nodiscard]] Cell& operator()(int ix, int iy, int iz) MPCF_NOEXCEPT {
    return data_[index(ix, iy, iz)];
  }
  [[nodiscard]] const Cell& operator()(int ix, int iy, int iz) const MPCF_NOEXCEPT {
    return data_[index(ix, iy, iz)];
  }

  /// RHS / low-storage RK accumulator cell.
  [[nodiscard]] Cell& tmp(int ix, int iy, int iz) MPCF_NOEXCEPT {
    return tmp_[index(ix, iy, iz)];
  }
  [[nodiscard]] const Cell& tmp(int ix, int iy, int iz) const MPCF_NOEXCEPT {
    return tmp_[index(ix, iy, iz)];
  }

  [[nodiscard]] Cell* data() noexcept { return data_.data(); }
  [[nodiscard]] const Cell* data() const noexcept { return data_.data(); }
  [[nodiscard]] Cell* tmp_data() noexcept { return tmp_.data(); }
  [[nodiscard]] const Cell* tmp_data() const noexcept { return tmp_.data(); }

 private:
  [[nodiscard]] std::size_t index(int ix, int iy, int iz) const MPCF_NOEXCEPT {
    MPCF_CHECK(ix >= 0 && ix < bs_ && iy >= 0 && iy < bs_ && iz >= 0 && iz < bs_,
               "Block cell (" + std::to_string(ix) + "," + std::to_string(iy) + "," +
                   std::to_string(iz) + ") outside [0," + std::to_string(bs_) + ")^3");
    return ix + static_cast<std::size_t>(bs_) * (iy + static_cast<std::size_t>(bs_) * iz);
  }

  int bs_ = 0;
  AlignedBuffer<Cell> data_;
  AlignedBuffer<Cell> tmp_;
};

}  // namespace mpcf
