// Domain boundary conditions. Ghost cells outside the domain are synthesized
// by folding the out-of-range index back into the domain and flipping the
// sign of the normal momentum where a reflecting wall demands it.
//
// The production simulations (paper Section 7) use absorbing far-field
// boundaries with a reflecting solid wall on one face (wall-pressure
// diagnostics); tests also use fully periodic domains for conservation
// checks.
#pragma once

#include <array>

#include "common/config.h"
#include "common/error.h"

namespace mpcf {

enum class BCType {
  kAbsorbing,  ///< zero-gradient extrapolation
  kWall,       ///< reflecting wall (mirror + normal momentum flip)
  kPeriodic,   ///< wrap-around
};

/// Per-face boundary conditions, indexed [axis][side] with side 0 = low face.
struct BoundaryConditions {
  std::array<std::array<BCType, 2>, 3> face{{
      {BCType::kAbsorbing, BCType::kAbsorbing},
      {BCType::kAbsorbing, BCType::kAbsorbing},
      {BCType::kAbsorbing, BCType::kAbsorbing},
  }};

  static BoundaryConditions all(BCType t) {
    BoundaryConditions bc;
    for (auto& ax : bc.face) ax = {t, t};
    return bc;
  }
};

/// Result of folding one out-of-domain index back inside.
struct FoldedIndex {
  int i;          ///< in-domain index along the axis
  Real mom_sign;  ///< multiplier for the momentum component along the axis
};

/// Folds index `i` into [0, n) according to the BCs of `axis`.
/// Ghost depth must not exceed n (true for any practical block size).
inline FoldedIndex fold_index(int i, int n, const BoundaryConditions& bc, int axis) {
  if (i >= 0 && i < n) return {i, Real(1)};
  const int side = (i < 0) ? 0 : 1;
  switch (bc.face[axis][side]) {
    case BCType::kPeriodic:
      return {(i % n + n) % n, Real(1)};
    case BCType::kAbsorbing:
      return {i < 0 ? 0 : n - 1, Real(1)};
    case BCType::kWall:
      // Mirror about the face: ghost -1 <-> cell 0, ghost n <-> cell n-1.
      return {i < 0 ? -i - 1 : 2 * n - 1 - i, Real(-1)};
  }
  return {0, Real(1)};  // unreachable
}

}  // namespace mpcf
