// Section 7 throughput reproduction: cells advanced per second per core and
// the cost of compressed data dumps. The paper reports 721e9 cells/s on
// 1.6M cores (18.3 s per step over 13.2e12 cells, i.e. ~0.45 Mcells/s per
// core), compression rates of 10-20:1 for pressure and 100-150:1 for Gamma,
// and a dump overhead of 4-5% when dumping every 100 steps.
//
// --json [path] switches to the I/O pipeline sweep: end-to-end dump
// throughput (GB/s of solver data retired to disk) versus pipeline worker
// count, for every registered codec, written as one JSON document
// (BENCH_io.json by default). Worker counts beyond the machine's cores are
// still measured but flagged — on an undersubscribed box the scaling curve
// flattens for honest hardware reasons, not pipeline ones.
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "compression/codec.h"
#include "compression/pipeline.h"
#include "io/compressed_file.h"
#include "perf/machine.h"

using namespace mpcf;

namespace {

struct SweepPoint {
  int workers = 0;
  double seconds = 0;   ///< best-of-3 end-to-end dump wall clock
  double gbs = 0;       ///< solver bytes retired per second
  double ratio = 0;     ///< compression rate of the emitted file
  std::uint64_t file_bytes = 0;
};

SweepPoint measure_dump(const Grid& grid, compression::Coder coder, int workers) {
  compression::CompressionParams p;
  p.quantity = Q_G;
  p.eps = 2.3e-3f;
  p.coder = coder;
  p.workers = workers;
  const std::string path = "/tmp/mpcf_bench_io.cq";

  SweepPoint pt;
  pt.workers = workers;
  compression::PipelineStats stats;
  pt.seconds = mpcf::bench::time_best_of(
      [&] { pt.ratio = 0; (void)compression::dump_quantity_pipelined(grid, p, path, &stats); },
      3);
  pt.gbs = static_cast<double>(stats.uncompressed_bytes) / pt.seconds / 1e9;
  pt.ratio = static_cast<double>(stats.uncompressed_bytes) /
             static_cast<double>(stats.compressed_bytes);
  pt.file_bytes = stats.bytes_written;
  std::remove(path.c_str());
  return pt;
}

int write_json(const char* out_path) {
  Simulation::Params params;
  params.extent = 2e-3;
  Simulation sim(8, 8, 8, 8, params);  // 64^3 cells
  mpcf::bench::init_cloud_state(sim.grid(), 10);
  sim.step();  // develop the field so the encode cost is production-like

  const unsigned cores = std::thread::hardware_concurrency();
  constexpr compression::Coder kCoders[] = {
      compression::Coder::kZlib, compression::Coder::kSparseZlib,
      compression::Coder::kLz4, compression::Coder::kSparseLz4};
  constexpr int kWorkers[] = {1, 2, 4};

  struct CodecSweep {
    const char* name;
    std::vector<SweepPoint> points;
  };
  std::vector<CodecSweep> sweeps;
  for (const auto coder : kCoders) {
    CodecSweep sweep{compression::codec_for(coder).name(), {}};
    for (const int w : kWorkers) {
      sweep.points.push_back(measure_dump(sim.grid(), coder, w));
      const auto& pt = sweep.points.back();
      std::printf("%-12s workers=%d  %7.3f ms  %6.3f GB/s  ratio %6.1f:1%s\n",
                  sweep.name, pt.workers, pt.seconds * 1e3, pt.gbs, pt.ratio,
                  static_cast<unsigned>(pt.workers) > cores ? "  (oversubscribed)"
                                                            : "");
    }
    sweeps.push_back(std::move(sweep));
  }

  // mpcf-lint: allow(raw-io): bench JSON report; SafeFile atomicity is pointless for a rewritable artifact
  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"io_pipeline\",\n");
  std::fprintf(out, "  \"cores\": %u,\n", cores);
  std::fprintf(out, "  \"cells\": %lld,\n",
               static_cast<long long>(sim.grid().cell_count()));
  std::fprintf(out, "  \"quantity\": \"G\",\n");
  std::fprintf(out, "  \"codecs\": [\n");
  for (std::size_t c = 0; c < sweeps.size(); ++c) {
    std::fprintf(out, "    {\"codec\": \"%s\", \"sweep\": [\n", sweeps[c].name);
    for (std::size_t i = 0; i < sweeps[c].points.size(); ++i) {
      const auto& pt = sweeps[c].points[i];
      std::fprintf(out,
                   "      {\"workers\": %d, \"seconds\": %.6f, \"gbs\": %.3f, "
                   "\"ratio\": %.1f, \"file_bytes\": %llu, \"oversubscribed\": %s}%s\n",
                   pt.workers, pt.seconds, pt.gbs, pt.ratio,
                   static_cast<unsigned long long>(pt.file_bytes),
                   static_cast<unsigned>(pt.workers) > cores ? "true" : "false",
                   i + 1 < sweeps[c].points.size() ? "," : "");
    }
    std::fprintf(out, "    ]}%s\n", c + 1 < sweeps.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path);
  return 0;
}

int run_text_report() {
  Simulation::Params params;
  params.extent = 2e-3;
  Simulation sim(8, 8, 8, 8, params);  // 64^3 cells
  mpcf::bench::init_cloud_state(sim.grid(), 10);

  // Warm up, then time production-style steps.
  sim.step();
  sim.profile().reset();
  const int steps = 8;
  Timer t;
  for (int s = 0; s < steps; ++s) sim.step();
  const double step_time = t.seconds() / steps;
  const double cells = static_cast<double>(sim.grid().cell_count());

  std::puts("=== Section 7 analogue: production throughput ===");
  std::printf("grid: %.0f cells, %.3f s/step -> %.3f Mcells/s per core\n", cells,
              step_time, cells / step_time / 1e6);
  std::printf("paper: 13.2e12 cells / 18.3 s = 721e9 cells/s on 1.6e6 cores\n");
  std::printf("       = %.3f Mcells/s per core (A2 @1.6GHz; ours runs one host core)\n",
              721e9 / 1.6e6 / 1e6);

  // Dump cost at every-100-steps cadence: one dump costs t_dump; amortized
  // over 100 steps its overhead is t_dump / (100 * t_step). The dumps ride
  // the pipelined stage graph — the path production uses.
  Timer td;
  compression::CompressionParams cg;
  cg.quantity = Q_G;
  cg.eps = 2.3e-3f;
  compression::PipelineStats sg;
  (void)compression::dump_quantity_pipelined(sim.grid(), cg, "/tmp/mpcf_tp_G.cq", &sg);
  compression::CompressionParams cpp_;
  cpp_.derive_pressure = true;
  cpp_.eps = 1e5f;
  compression::PipelineStats sp;
  (void)compression::dump_quantity_pipelined(sim.grid(), cpp_, "/tmp/mpcf_tp_p.cq", &sp);
  const double dump_time = td.seconds();
  std::remove("/tmp/mpcf_tp_G.cq");
  std::remove("/tmp/mpcf_tp_p.cq");

  const double rate_g = double(sg.uncompressed_bytes) / double(sg.compressed_bytes);
  const double rate_p = double(sp.uncompressed_bytes) / double(sp.compressed_bytes);
  std::printf("\ncompression rates: Gamma %.1f:1, pressure %.1f:1\n", rate_g, rate_p);
  std::printf("paper: Gamma 100-150:1, pressure 10-20:1 (rates grow with grid\n");
  std::printf("size; the Gamma >> pressure ordering is the invariant)\n");
  std::printf("\ndump cost: %.3f s; at every-100-steps cadence: %.2f%% of runtime\n",
              dump_time, 100.0 * dump_time / (100.0 * step_time));
  std::printf("paper: 4%%-5%% of total time for dumps every 100 steps\n");

  const std::uint64_t raw = sg.uncompressed_bytes + sp.uncompressed_bytes;
  const std::uint64_t comp = sg.compressed_bytes + sp.compressed_bytes;
  std::printf("\ndisk footprint per dump: %.2f MB raw -> %.3f MB compressed (%.0f:1)\n",
              raw / 1e6, comp / 1e6, double(raw) / comp);
  std::printf("paper: 7.9 TB -> 0.47 TB over a full production run\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) {
      const char* path =
          (i + 1 < argc && argv[i + 1][0] != '-') ? argv[i + 1] : "BENCH_io.json";
      return write_json(path);
    }
  return run_text_report();
}
