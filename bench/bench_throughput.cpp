// Section 7 throughput reproduction: cells advanced per second per core and
// the cost of compressed data dumps. The paper reports 721e9 cells/s on
// 1.6M cores (18.3 s per step over 13.2e12 cells, i.e. ~0.45 Mcells/s per
// core), compression rates of 10-20:1 for pressure and 100-150:1 for Gamma,
// and a dump overhead of 4-5% when dumping every 100 steps.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "compression/compressor.h"
#include "io/compressed_file.h"
#include "perf/machine.h"

using namespace mpcf;

int main() {
  Simulation::Params params;
  params.extent = 2e-3;
  Simulation sim(8, 8, 8, 8, params);  // 64^3 cells
  mpcf::bench::init_cloud_state(sim.grid(), 10);

  // Warm up, then time production-style steps.
  sim.step();
  sim.profile().reset();
  const int steps = 8;
  Timer t;
  for (int s = 0; s < steps; ++s) sim.step();
  const double step_time = t.seconds() / steps;
  const double cells = static_cast<double>(sim.grid().cell_count());

  std::puts("=== Section 7 analogue: production throughput ===");
  std::printf("grid: %.0f cells, %.3f s/step -> %.3f Mcells/s per core\n", cells,
              step_time, cells / step_time / 1e6);
  std::printf("paper: 13.2e12 cells / 18.3 s = 721e9 cells/s on 1.6e6 cores\n");
  std::printf("       = %.3f Mcells/s per core (A2 @1.6GHz; ours runs one host core)\n",
              721e9 / 1.6e6 / 1e6);

  // Dump cost at every-100-steps cadence: one dump costs t_dump; amortized
  // over 100 steps its overhead is t_dump / (100 * t_step).
  Timer td;
  compression::CompressionParams cg;
  cg.quantity = Q_G;
  cg.eps = 2.3e-3f;
  const auto cq_g = compression::compress_quantity(sim.grid(), cg);
  io::write_compressed("/tmp/mpcf_tp_G.cq", cq_g);
  compression::CompressionParams cpp_;
  cpp_.derive_pressure = true;
  cpp_.eps = 1e5f;
  const auto cq_p = compression::compress_quantity(sim.grid(), cpp_);
  io::write_compressed("/tmp/mpcf_tp_p.cq", cq_p);
  const double dump_time = td.seconds();
  std::remove("/tmp/mpcf_tp_G.cq");
  std::remove("/tmp/mpcf_tp_p.cq");

  std::printf("\ncompression rates: Gamma %.1f:1, pressure %.1f:1\n",
              cq_g.compression_rate(), cq_p.compression_rate());
  std::printf("paper: Gamma 100-150:1, pressure 10-20:1 (rates grow with grid\n");
  std::printf("size; the Gamma >> pressure ordering is the invariant)\n");
  std::printf("\ndump cost: %.3f s; at every-100-steps cadence: %.2f%% of runtime\n",
              dump_time, 100.0 * dump_time / (100.0 * step_time));
  std::printf("paper: 4%%-5%% of total time for dumps every 100 steps\n");

  const std::uint64_t raw = cq_g.uncompressed_bytes() + cq_p.uncompressed_bytes();
  const std::uint64_t comp = cq_g.compressed_bytes() + cq_p.compressed_bytes();
  std::printf("\ndisk footprint per dump: %.2f MB raw -> %.3f MB compressed (%.0f:1)\n",
              raw / 1e6, comp / 1e6, double(raw) / comp);
  std::printf("paper: 7.9 TB -> 0.47 TB over a full production run\n");
  return 0;
}
