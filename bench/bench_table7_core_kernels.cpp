// Table 7 analogue: core-layer kernel throughput, plain C++ (scalar float)
// vs explicit 4-wide SIMD (the paper's QPX column, here SSE) vs the 8-wide
// AVX2 backend. The paper reports RHS 2.21 -> 8.27 GFLOP/s (3.7X), DT
// 0.90 -> 1.96 (2.2X), UP flat (memory-bound), FWT 0.40 -> 1.29 (3.2X).
// The structure to reproduce: explicit vectorization radically helps every
// kernel except UP — and widening the lanes helps again wherever the
// kernel is compute-bound.
#include <cstdio>

#include "bench_util.h"
#include "grid/lab.h"
#include "kernels/sos.h"
#include "simd/dispatch.h"
#include "kernels/update.h"
#include "perf/microbench.h"
#include "wavelet/interp_wavelet.h"

using namespace mpcf;
using namespace mpcf::kernels;

int main() {
  const int bs = 32;
  Grid grid(2, 2, 2, bs, 1e-3);
  mpcf::bench::init_cloud_state(grid);

  BlockLab lab;
  lab.resize(bs);
  RhsWorkspace ws;
  ws.resize(bs);
  const auto bc = BoundaryConditions::all(BCType::kAbsorbing);
  lab.load(grid, 0, 0, 0, bc);

  const double peak = perf::host_machine().peak_gflops;
  const bool w8 = simd::host_executes(simd::Width::kW8);
  struct Row {
    const char* name;
    double scalar_gf, simd_gf, simd8_gf;  // simd8_gf <= 0: not measured
  };
  std::vector<Row> rows;

  // RHS: scalar vs fused SIMD over one block, repeated.
  {
    const int reps = 4;
    const double flops = rhs_flops(bs) * reps;
    const double ts = mpcf::bench::time_best_of([&] {
      for (int i = 0; i < reps; ++i)
        rhs_block(lab, static_cast<Real>(grid.h()), 0.0f, grid.block(0), ws,
                  KernelImpl::kScalar);
    });
    const double tv = mpcf::bench::time_best_of([&] {
      for (int i = 0; i < reps; ++i)
        rhs_block(lab, static_cast<Real>(grid.h()), 0.0f, grid.block(0), ws,
                  KernelImpl::kSimdFused, 5, simd::Width::kW4);
    });
    double gf8 = 0;
    if (w8) {
      const double t8 = mpcf::bench::time_best_of([&] {
        for (int i = 0; i < reps; ++i)
          rhs_block(lab, static_cast<Real>(grid.h()), 0.0f, grid.block(0), ws,
                    KernelImpl::kSimdFused, 5, simd::Width::kW8);
      });
      gf8 = flops / t8 / 1e9;
    }
    rows.push_back({"RHS", flops / ts / 1e9, flops / tv / 1e9, gf8});
  }

  // DT (SOS reduction).
  {
    const int reps = 64;
    const double flops = sos_flops(bs) * reps;
    volatile double sink = 0;
    const double ts = mpcf::bench::time_best_of([&] {
      for (int i = 0; i < reps; ++i) sink = block_max_speed(grid.block(0));
    });
    const double tv = mpcf::bench::time_best_of([&] {
      for (int i = 0; i < reps; ++i)
        sink = block_max_speed_simd(grid.block(0), simd::Width::kW4);
    });
    double gf8 = 0;
    if (w8) {
      const double t8 = mpcf::bench::time_best_of([&] {
        for (int i = 0; i < reps; ++i)
          sink = block_max_speed_simd(grid.block(0), simd::Width::kW8);
      });
      gf8 = flops / t8 / 1e9;
    }
    (void)sink;
    rows.push_back({"DT", flops / ts / 1e9, flops / tv / 1e9, gf8});
  }

  // UP (streaming axpy) — use all 8 blocks so the working set exceeds L2.
  {
    const int reps = 16;
    const double flops = update_flops(bs) * grid.block_count() * reps;
    const double ts = mpcf::bench::time_best_of([&] {
      for (int i = 0; i < reps; ++i)
        for (int b = 0; b < grid.block_count(); ++b) update_block(grid.block(b), 1e-12f);
    });
    const double tv = mpcf::bench::time_best_of([&] {
      for (int i = 0; i < reps; ++i)
        for (int b = 0; b < grid.block_count(); ++b)
          update_block_simd(grid.block(b), 1e-12f, simd::Width::kW4);
    });
    double gf8 = 0;
    if (w8) {
      const double t8 = mpcf::bench::time_best_of([&] {
        for (int i = 0; i < reps; ++i)
          for (int b = 0; b < grid.block_count(); ++b)
            update_block_simd(grid.block(b), 1e-12f, simd::Width::kW8);
      });
      gf8 = flops / t8 / 1e9;
    }
    rows.push_back({"UP", flops / ts / 1e9, flops / tv / 1e9, gf8});
  }

  // FWT (forward wavelet transform of a block-sized cube).
  {
    const int levels = wavelet::max_levels(bs);
    const int reps = 32;
    Field3D<float> cube(bs, bs, bs);
    for (int iz = 0; iz < bs; ++iz)
      for (int iy = 0; iy < bs; ++iy)
        for (int ix = 0; ix < bs; ++ix) cube(ix, iy, iz) = grid.cell(ix, iy, iz).rho;
    const double flops = wavelet::fwt_flops(bs, levels) * reps;
    const double ts = mpcf::bench::time_best_of([&] {
      for (int i = 0; i < reps; ++i) wavelet::forward_3d(cube.view(), levels);
    });
    const double tv = mpcf::bench::time_best_of([&] {
      for (int i = 0; i < reps; ++i) wavelet::forward_3d_simd(cube.view(), levels);
    });
    rows.push_back({"FWT", flops / ts / 1e9, flops / tv / 1e9, 0.0});
  }

  std::puts("=== Table 7 analogue: core-layer kernel performance ===");
  std::printf("%-8s %13s %13s %13s %9s %11s\n", "kernel", "C++ GFLOP/s",
              "x4 GFLOP/s", "x8 GFLOP/s", "speedup", "% of peak");
  for (const auto& r : rows) {
    const double best = r.simd8_gf > 0 ? r.simd8_gf : r.simd_gf;
    std::printf("%-8s %13.2f %13.2f ", r.name, r.scalar_gf, r.simd_gf);
    if (r.simd8_gf > 0)
      std::printf("%13.2f ", r.simd8_gf);
    else
      std::printf("%13s ", "-");
    std::printf("%8.1fX %10.1f%%\n", best / r.scalar_gf, 100.0 * best / peak);
  }
  std::puts("\npaper Table 7: RHS 3.7X, DT 2.2X, UP ~1X, FWT 3.2X from QPX;");
  std::puts("RHS reaches 65% of peak, UP stays at 2% (memory-bound).");
  return 0;
}
