// Ablation: block size (paper outlook — "more investigations are necessary
// to identify optimal block sizes for future systems"). Larger blocks
// amortize the ghost overhead ((bs+6)^3 / bs^3 lab inflation) but stress the
// cache; smaller blocks schedule more flexibly. Measures RHS throughput and
// the lab-load share per block size.
#include <cstdio>

#include "bench_util.h"
#include "grid/lab.h"
#include "perf/microbench.h"

using namespace mpcf;
using namespace mpcf::kernels;

int main() {
  std::puts("=== Ablation: block size ===");
  std::printf("%-6s %14s %12s %14s %12s\n", "bs", "ghost overhd", "RHS GFLOP/s",
              "lab load [us]", "lab share");
  for (int bs : {8, 16, 32}) {
    // Same total cell count (32^3) for every block size.
    const int nb = 32 / bs;
    Grid grid(nb, nb, nb, bs, 1e-3);
    mpcf::bench::init_cloud_state(grid);
    BlockLab lab;
    lab.resize(bs);
    RhsWorkspace ws;
    ws.resize(bs);
    const auto bc = BoundaryConditions::all(BCType::kAbsorbing);

    const double t_lab = mpcf::bench::time_best_of([&] {
      for (int b = 0; b < grid.block_count(); ++b) {
        int x, y, z;
        grid.indexer().coords(b, x, y, z);
        lab.load(grid, x, y, z, bc);
      }
    });
    const double t_rhs = mpcf::bench::time_best_of([&] {
      for (int b = 0; b < grid.block_count(); ++b) {
        int x, y, z;
        grid.indexer().coords(b, x, y, z);
        lab.load(grid, x, y, z, bc);
        rhs_block(lab, static_cast<Real>(grid.h()), 0.0f, grid.block(b), ws);
      }
    });
    const double n = bs + 2.0 * kGhosts;
    const double overhead = n * n * n / (double(bs) * bs * bs);
    const double flops = rhs_flops(bs) * grid.block_count();
    std::printf("%-6d %13.2fx %12.2f %14.1f %11.0f%%\n", bs, overhead,
                flops / t_rhs / 1e9, t_lab / grid.block_count() * 1e6,
                100.0 * t_lab / t_rhs);
  }
  std::puts("\npaper uses 32^3 blocks: the ghost-overhead factor drops from");
  std::puts("5.4x (bs=8) to 1.7x (bs=32) while the per-thread working set");
  std::puts("still fits the cache hierarchy of the BQC.");
  return 0;
}
