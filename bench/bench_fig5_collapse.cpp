// Figure 5 reproduction: temporal evolution of (left) the maximum pressure
// in the flow field and on the solid wall, (right) the kinetic energy and
// the normalized equivalent radius of the cloud, for a bubble cloud
// collapsing above a reflecting wall.
//
// Expected shape (paper): bubbles deform asymmetrically and collapse; the
// field pressure spikes to many times the ambient 100 bar near maximum
// kinetic energy; the wall pressure peaks later (~20x ambient in the paper's
// units) as the collapse wave hits the wall; the equivalent radius decays,
// then partially rebounds before the final collapse.
#include <cstdio>

#include "bench_util.h"
#include "core/simulation.h"
#include "eos/stiffened_gas.h"
#include "workload/cloud.h"

int main(int argc, char** argv) {
  using namespace mpcf;
  const int steps = argc > 1 ? std::atoi(argv[1]) : 600;

  Simulation::Params params;
  params.extent = 2e-3;
  params.bc.face[2][0] = BCType::kWall;  // solid wall at z = 0
  Simulation sim(8, 8, 8, 8, params);    // 64^3

  CloudParams cp;
  cp.count = 8;
  cp.r_min = 140e-6;  // >= 4.5 cells radius at h = 31 um: resolvable
  cp.r_max = 300e-6;
  cp.lognormal_mu = std::log(190e-6);
  cp.box_lo = 0.2;
  cp.box_hi = 0.7;  // cloud sits above the wall
  const auto cloud = generate_cloud(cp, params.extent);
  set_cloud_ic(sim.grid(), cloud, TwoPhaseIC{});

  const double Gv = materials::kVapor.Gamma(), Gl = materials::kLiquid.Gamma();
  const auto d0 = sim.diagnostics(Gv, Gl);

  std::printf("# Figure 5 series: cloud of %zu bubbles above a wall, 64^3 cells\n",
              cloud.size());
  std::printf("# t[us]  max_p/p0  wall_p/p0  kinetic[J]  r_eq/r0\n");
  double peak_field = 0, peak_wall = 0, peak_ke = 0;
  double t_peak_field = 0, t_peak_wall = 0, t_peak_ke = 0;
  for (int s = 0; s <= steps; ++s) {
    const auto d = sim.diagnostics(Gv, Gl);
    if (d.max_p_field > peak_field) {
      peak_field = d.max_p_field;
      t_peak_field = sim.time();
    }
    if (d.max_p_wall > peak_wall) {
      peak_wall = d.max_p_wall;
      t_peak_wall = sim.time();
    }
    if (d.kinetic_energy > peak_ke) {
      peak_ke = d.kinetic_energy;
      t_peak_ke = sim.time();
    }
    if (s % 10 == 0)
      std::printf("%7.3f  %8.2f  %9.2f  %10.3e  %7.3f\n", sim.time() * 1e6,
                  d.max_p_field / materials::kLiquidPressure,
                  d.max_p_wall / materials::kLiquidPressure, d.kinetic_energy,
                  d.equivalent_radius / d0.equivalent_radius);
    if (s < steps) sim.step();
  }

  std::printf("\n# peaks: field %.1fx ambient at %.2f us; wall %.1fx at %.2f us;\n",
              peak_field / materials::kLiquidPressure, t_peak_field * 1e6,
              peak_wall / materials::kLiquidPressure, t_peak_wall * 1e6);
  std::printf("#        kinetic energy max %.3e J at %.2f us\n", peak_ke, t_peak_ke * 1e6);
  std::puts("# shape check (paper Fig. 5): pressure peaks exceed ambient by a");
  std::puts("# large factor; the wall peak lags the field peak; the equivalent");
  std::puts("# radius decays with a partial rebound.");
  return 0;
}
