// Shared helpers for the table/figure reproduction benches.
#pragma once

#include <cstdio>
#include <vector>

#include "core/simulation.h"
#include "eos/stiffened_gas.h"
#include "workload/cloud.h"

namespace mpcf::bench {

/// Fills a grid with the production-style two-phase cloud state.
inline void init_cloud_state(Grid& grid, int bubbles = 8, std::uint64_t seed = 42) {
  CloudParams cp;
  cp.count = bubbles;
  cp.seed = seed;
  const double extent = grid.h() * grid.cells_x();
  cp.r_min = 0.03 * extent;
  cp.r_max = 0.12 * extent;
  cp.lognormal_mu = std::log(0.06 * extent);
  cp.box_lo = 0.15;
  cp.box_hi = 0.85;
  const auto cloud = generate_cloud(cp, extent);
  set_cloud_ic(grid, cloud, TwoPhaseIC{});
}

/// Median-of-3 wall-clock of a callable.
template <typename F>
double time_best_of(F&& f, int repeats = 3) {
  double best = 1e300;
  for (int i = 0; i < repeats; ++i) {
    Timer t;
    f();
    best = std::min(best, t.seconds());
  }
  return best;
}

inline void print_rule() {
  std::puts("--------------------------------------------------------------------------");
}

}  // namespace mpcf::bench
