// Figure 7 reproduction: wall-clock distribution of a production step across
// the kernels (left pie: RHS ~89%, with DT, UP and IO_WAVELET sharing the
// rest; dumps cost ~4% at every-100-steps cadence) and within a dump (right
// pie: 92% parallel I/O, 6% encoding, 2% wavelet transform in the paper —
// on a local filesystem the write share is smaller, but encoding must
// dominate the transform).
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "compression/compressor.h"
#include "io/compressed_file.h"

using namespace mpcf;

int main() {
  Simulation::Params params;
  params.extent = 2e-3;
  Simulation sim(6, 6, 6, 8, params);  // 48^3
  mpcf::bench::init_cloud_state(sim.grid(), 10);

  const int steps = 20, dump_every = 10;
  double t_fwt_dec = 0, t_enc = 0, t_io = 0;
  for (int s = 0; s < steps; ++s) {
    sim.step();
    if ((s + 1) % dump_every == 0) {
      for (int pass = 0; pass < 2; ++pass) {
        compression::CompressionParams cp;
        if (pass == 0) {
          cp.quantity = Q_G;
          cp.eps = 2.3e-3f;
        } else {
          cp.derive_pressure = true;
          cp.eps = 1e5f;
        }
        std::vector<compression::WorkerTimes> times;
        const auto cq = compression::compress_quantity(sim.grid(), cp, &times);
        for (const auto& t : times) {
          t_fwt_dec += t.dec;
          t_enc += t.enc;
        }
        Timer t;
        const std::string path = "/tmp/mpcf_fig7_dump.cq";
        io::write_compressed(path, cq);
        t_io += t.seconds();
        std::remove(path.c_str());
      }
    }
  }

  const StepProfile& p = sim.profile();
  const double io_total = t_fwt_dec + t_enc + t_io;
  const double total = p.total() + io_total;

  std::puts("=== Figure 7 (left): time distribution of the simulation ===");
  std::printf("RHS         %5.1f%%\n", 100 * p.rhs / total);
  std::printf("DT          %5.1f%%\n", 100 * p.dt / total);
  std::printf("UP          %5.1f%%\n", 100 * p.up / total);
  std::printf("IO_WAVELET  %5.1f%%   (dumps every %d steps)\n", 100 * io_total / total,
              dump_every);

  std::puts("\n=== Figure 7 (right): inside IO_WAVELET ===");
  std::printf("FWT+decimation  %5.1f%%\n", 100 * t_fwt_dec / io_total);
  std::printf("encoding        %5.1f%%\n", 100 * t_enc / io_total);
  std::printf("file write      %5.1f%%\n", 100 * t_io / io_total);

  std::puts("\npaper: RHS ~89% of the step; dumps <= 4-5% of total time;");
  std::puts("within a dump 92% I/O / 6% encoding / 2% FWT on GPFS (a local FS");
  std::puts("shifts the balance toward encoding, the compute shares remain).");
  return 0;
}
