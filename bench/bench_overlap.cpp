// Halo/interior overlap bench: the same cluster workload runs with the
// sequential schedule (full halo exchange stalls every RK stage) and with
// the task-based overlap pipeline (pack, drain and halo processing run as
// dependency-gated tasks hidden behind interior compute). Reports per-step
// wall clock and exposed communication time, best of several repetitions
// with the tracer off; a separate short traced run produces the phase split
// and a chrome://tracing JSON for visual inspection.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "cluster/cluster_simulation.h"
#include "perf/trace.h"

using namespace mpcf;
using namespace mpcf::cluster;

namespace {

struct RunResult {
  double wall = 0;       ///< advance() wall clock, all steps
  double stall = 0;      ///< exposed stall: step loop blocked on comm
  double comm_work = 0;  ///< comm thread-seconds, wherever they executed
  SimComm::Stats stats;  ///< transport counters
};

std::unique_ptr<ClusterSimulation> make_cluster(int ba, int bs, bool overlap) {
  Simulation::Params params;
  params.extent = 1e-3;
  // Periodic faces: every rank talks on all six faces, the worst (deepest
  // queue) communication pattern of the topology.
  params.bc = BoundaryConditions::all(BCType::kPeriodic);
  auto cs =
      std::make_unique<ClusterSimulation>(ba, ba, ba, bs, CartTopology(2, 2, 1), params);
  cs->set_overlap(overlap);
  Grid tmp(ba, ba, ba, bs, params.extent);
  mpcf::bench::init_cloud_state(tmp, 8);
  for (int r = 0; r < cs->rank_count(); ++r) {
    Grid& rg = cs->rank_sim(r).grid();
    int cx, cy, cz;
    cs->topology().coords(r, cx, cy, cz);
    for (int iz = 0; iz < rg.cells_z(); ++iz)
      for (int iy = 0; iy < rg.cells_y(); ++iy)
        for (int ix = 0; ix < rg.cells_x(); ++ix)
          rg.cell(ix, iy, iz) = tmp.cell(cx * rg.cells_x() + ix, cy * rg.cells_y() + iy,
                                         cz * rg.cells_z() + iz);
  }
  return cs;
}

/// Best-of-`reps` timing of `steps` steps on fresh clusters, tracer off so
/// the measurement carries no recording overhead. "Best" picks the rep with
/// the lowest wall clock and reports that rep's stall alongside it.
RunResult run_timed(int ba, int bs, bool overlap, int steps, int reps) {
  RunResult best;
  for (int rep = 0; rep < reps; ++rep) {
    auto cs = make_cluster(ba, bs, overlap);
    // One untimed step to settle the dt and warm caches/thread pools.
    cs->step();
    cs->comm().reset_stats();
    const double stall0 = cs->comm_time();
    const double work0 = cs->comm_work_time();
    Timer t;
    for (int s = 0; s < steps; ++s) cs->step();
    RunResult res;
    res.wall = t.seconds();
    res.stall = cs->comm_time() - stall0;
    res.comm_work = cs->comm_work_time() - work0;
    res.stats = cs->comm().stats();
    if (rep == 0 || res.wall < best.wall) best = res;
  }
  return best;
}

void print_row(const char* name, const RunResult& r) {
  std::printf("%-26s %12.2f %12.2f %12.2f %9.1f%% %8llu\n", name, 1e3 * r.wall,
              1e3 * r.stall, 1e3 * r.comm_work, 100.0 * r.stall / r.wall,
              static_cast<unsigned long long>(r.stats.messages));
}

}  // namespace

int main() {
  const int ba = 6, bs = 16;  // 96^3 cells over 2x2x1 ranks
  const int steps = 4, reps = 3;

  const RunResult r_seq = run_timed(ba, bs, /*overlap=*/false, steps, reps);
  const RunResult r_ovl = run_timed(ba, bs, /*overlap=*/true, steps, reps);

  std::puts("=== Halo/interior overlap: exposed comm stall, overlap off vs on ===");
  std::printf("(best of %d reps x %d steps, tracer off)\n", reps, steps);
  std::printf("%-26s %12s %12s %12s %10s %8s\n", "schedule", "wall [ms]", "stall [ms]",
              "comm work", "stall %", "msgs");
  print_row("sequential exchange", r_seq);
  print_row("overlapped (OpenMP tasks)", r_ovl);
  mpcf::bench::print_rule();
  if (r_ovl.stall > 0)
    std::printf("stall reduction: %.2fx (%.2f -> %.2f ms)\n", r_seq.stall / r_ovl.stall,
                1e3 * r_seq.stall, 1e3 * r_ovl.stall);
  else
    std::printf("stall reduction: %.2f ms -> none exposed\n", 1e3 * r_seq.stall);
  std::printf(
      "comm work moved into the task region: %.2f ms (of which recv %.2f ms),\n"
      "interleaved with interior compute instead of blocking the step loop\n",
      1e3 * r_ovl.comm_work, 1e3 * r_ovl.stats.recv_seconds);

  // Separate short traced run: the tracer adds per-span recording overhead,
  // so it stays out of the timed comparison above.
  auto traced = make_cluster(ba, bs, /*overlap=*/true);
  traced->step();  // warmup outside the trace
  traced->tracer().enable(true);
  for (int s = 0; s < 2; ++s) traced->step();
  traced->tracer().enable(false);

  using perf::TracePhase;
  const auto& tr = traced->tracer();
  std::puts("\nphase split of a 2-step traced overlapped run (thread-seconds):");
  // kInterior/kHalo carry the membership split on both schedules; the fused
  // pipeline additionally splits its block tasks into lab assembly (kLab)
  // and pure RHS (kRhs) spans, so RHS time never reads as zero under fusion.
  for (const TracePhase p : {TracePhase::kExchange, TracePhase::kInterior,
                             TracePhase::kHalo, TracePhase::kLab, TracePhase::kRhs,
                             TracePhase::kUpdate, TracePhase::kReduce})
    std::printf("  %-9s %9.2f ms\n", perf::trace_phase_name(p),
                1e3 * tr.total_seconds(p));

  const char* trace_path = "bench_overlap_trace.json";
  tr.write_chrome_json(trace_path);
  std::printf("\nchrome://tracing timeline written to %s\n", trace_path);
  std::puts("(open chrome://tracing or https://ui.perfetto.dev and load the file;");
  std::puts(" one row group per rank, interior/halo tasks interleaved across threads)");
  return 0;
}
