// STEP bench: the fused per-block step pipeline (DESIGN.md §14) against the
// staged barrier-separated sweeps it replaces. Measures whole-step
// throughput (compute_dt + three RK stages + positivity guard) on a cloud
// workload, verifies the two schedules stay bitwise-identical, and reports
// the speedup. The fused schedule's wins come from cache-hot lab->RHS->update
// chaining, the removed stage barriers, and the SOS reduction folded into
// the step (no standalone sweep in steady state) — all of which need
// multiple cores to show up fully; single-core hosts are flagged as such.
//
//   bench_step [--steps N] [--blocks B] [--bs S] [--smoke] [--json [path]]
//
// --smoke: tiny grid / two steps, exit non-zero on bitwise mismatch (CI).
// --json: splice a "step" section into BENCH_kernels.json (created if
// absent; an existing step section is replaced).
#include <omp.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_util.h"
#include "core/simulation.h"
#include "grid/cell.h"
#include "simd/dispatch.h"

namespace {

using namespace mpcf;

Simulation::Params step_params(bool fused) {
  Simulation::Params p;
  p.extent = 1e-3;
  p.bc = BoundaryConditions::all(BCType::kAbsorbing);
  p.fused_step = fused;
  return p;
}

bool bitwise_equal(const Grid& a, const Grid& b) {
  for (int iz = 0; iz < a.cells_z(); ++iz)
    for (int iy = 0; iy < a.cells_y(); ++iy)
      for (int ix = 0; ix < a.cells_x(); ++ix)
        for (int q = 0; q < kNumQuantities; ++q)
          if (a.cell(ix, iy, iz).q(q) != b.cell(ix, iy, iz).q(q)) return false;
  return true;
}

/// Seconds per step of a freshly initialized simulation (first step excluded:
/// it pays the one-time graph build, workspace allocation and SOS sweep).
double seconds_per_step(bool fused, int blocks, int bs, int steps) {
  Simulation sim(blocks, blocks, blocks, bs, step_params(fused));
  bench::init_cloud_state(sim.grid());
  sim.step();  // warm up
  Timer t;
  for (int s = 0; s < steps; ++s) sim.step();
  return t.seconds() / steps;
}

/// Inserts (or replaces) the "step" section in the kernels JSON artifact,
/// creating a minimal document when the file does not exist.
int splice_json(const char* path, const std::string& section) {
  std::string doc;
  {
    // mpcf-lint: allow(raw-io): bench JSON report; SafeFile atomicity is pointless for a rewritable artifact
    std::ifstream in(path);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      doc = ss.str();
    }
  }
  if (doc.empty()) doc = "{\n  \"bench\": \"kernels_micro\"\n}\n";
  // Drop a previous step section: it is always spliced last, so cutting from
  // the comma preceding its key to the closing brace removes it cleanly.
  const std::size_t old_pos = doc.find("\"step\":");
  if (old_pos != std::string::npos) {
    const std::size_t comma = doc.rfind(',', old_pos);
    const std::size_t close = doc.rfind('}');
    if (comma == std::string::npos || close == std::string::npos || close < old_pos) {
      std::fprintf(stderr, "cannot parse existing %s; not splicing\n", path);
      return 1;
    }
    doc.erase(comma, close - comma);
  }
  const std::size_t close = doc.rfind('}');
  if (close == std::string::npos) {
    std::fprintf(stderr, "%s is not a JSON object; not splicing\n", path);
    return 1;
  }
  std::size_t end = close;
  while (end > 0 && (doc[end - 1] == '\n' || doc[end - 1] == ' ')) --end;
  doc = doc.substr(0, end) + ",\n  \"step\": " + section + "\n}\n";
  // mpcf-lint: allow(raw-io): bench JSON report; SafeFile atomicity is pointless for a rewritable artifact
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  out << doc;
  std::printf("spliced step section into %s\n", path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int steps = 5, blocks = 4, bs = 16;
  bool smoke = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--steps") == 0 && i + 1 < argc) steps = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--blocks") == 0 && i + 1 < argc) blocks = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--bs") == 0 && i + 1 < argc) bs = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--smoke") == 0) { smoke = true; steps = 2; blocks = 2; bs = 8; }
    else if (std::strcmp(argv[i], "--json") == 0)
      json_path = (i + 1 < argc && argv[i + 1][0] != '-') ? argv[++i] : "BENCH_kernels.json";
  }

  const int threads = omp_get_max_threads();
  std::printf("STEP schedule bench: %d^3 blocks of %d^3 cells, %d timed steps, "
              "%d threads, width %s\n",
              blocks, bs, steps, threads, simd::width_name(simd::dispatch_width()));

  // Conformance first: both schedules from the same state, dt and final grid
  // must agree bit-for-bit.
  Simulation staged_chk(blocks, blocks, blocks, bs, step_params(false));
  Simulation fused_chk(blocks, blocks, blocks, bs, step_params(true));
  bench::init_cloud_state(staged_chk.grid());
  bench::init_cloud_state(fused_chk.grid());
  bool identical = true;
  for (int s = 0; s < 2 && identical; ++s)
    identical = staged_chk.step() == fused_chk.step();
  identical = identical && bitwise_equal(staged_chk.grid(), fused_chk.grid());
  std::printf("bitwise identity (2 steps): %s\n", identical ? "OK" : "MISMATCH");
  if (!identical) return 1;

  const double staged_s = seconds_per_step(false, blocks, bs, steps);
  const double fused_s = seconds_per_step(true, blocks, bs, steps);
  const double speedup = staged_s / fused_s;

  mpcf::bench::print_rule();
  std::printf("  staged  %9.3f ms/step\n", staged_s * 1e3);
  std::printf("  fused   %9.3f ms/step\n", fused_s * 1e3);
  std::printf("  speedup %9.2fx%s\n", speedup,
              threads == 1 ? "  (single core: barrier removal and SOS folding "
                             "only; fusion gains need >1 thread)"
                           : "");
  mpcf::bench::print_rule();

  if (json_path != nullptr) {
    char section[512];
    std::snprintf(section, sizeof(section),
                  "{\"blocks\": %d, \"block_size\": %d, \"steps\": %d, "
                  "\"threads\": %d, \"cores\": %d, \"single_core\": %s, "
                  "\"staged_ms_per_step\": %.3f, \"fused_ms_per_step\": %.3f, "
                  "\"speedup\": %.3f, \"bitwise_identical\": true}",
                  blocks, bs, steps, threads, omp_get_num_procs(),
                  omp_get_num_procs() == 1 ? "true" : "false", staged_s * 1e3,
                  fused_s * 1e3, speedup);
    return splice_json(json_path, section);
  }
  (void)smoke;  // smoke's job is the bitwise gate above + the tiny shape
  return 0;
}
