// Figures 4/6/8 reproduction: renders the pressure field and liquid/vapor
// interface of a collapsing cloud at early, mid and late times (t = 0, 0.3,
// 0.6 in collapse units) to PPM images, plus the domain-decomposition view
// of Fig. 6 (rank ownership painted over the mid-plane). The paper's
// volume renderings become mid-plane slices here; the features to look for
// are identical: asymmetric bubble deformation toward the cloud center and
// collective pressure hot spots after the first collapses.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "cluster/cluster_simulation.h"
#include "io/ppm.h"
#include "workload/cloud.h"

using namespace mpcf;

int main(int argc, char** argv) {
  const std::string outdir = argc > 1 ? argv[1] : "/tmp";

  Simulation::Params params;
  params.extent = 2e-3;
  Simulation sim(8, 8, 8, 8, params);  // 64^3
  CloudParams cp;
  cp.count = 8;
  cp.r_min = 140e-6;  // resolvable at h = 31 um
  cp.r_max = 320e-6;
  cp.lognormal_mu = std::log(200e-6);
  const auto cloud = generate_cloud(cp, params.extent);
  set_cloud_ic(sim.grid(), cloud, TwoPhaseIC{});

  const double Gv = materials::kVapor.Gamma(), Gl = materials::kLiquid.Gamma();
  io::SliceRenderOptions opt;
  opt.G_vapor = Gv;
  opt.G_liquid = Gl;
  opt.vmin = 0.0;
  opt.vmax = 3.0 * materials::kLiquidPressure;

  // Collapse-unit snapshots: t = 0, 0.3, 0.6 of the nominal cloud collapse
  // time (Rayleigh time of the mean bubble).
  const double tau = 0.915 * 180e-6 * std::sqrt(1000.0 / 1e7);
  const double snap_times[3] = {0.0, 0.3 * tau, 0.6 * tau};
  const char* labels[3] = {"t00", "t03", "t06"};

  std::printf("# Fig 4/8 snapshots: cloud of %zu bubbles, tau=%.2f us\n", cloud.size(),
              tau * 1e6);
  for (int snap = 0; snap < 3; ++snap) {
    while (sim.time() < snap_times[snap]) sim.step();
    const std::string path = outdir + "/fig8_pressure_" + labels[snap] + ".ppm";
    io::write_pressure_slice_ppm(path, sim.grid(), opt);
    const auto d = sim.diagnostics(Gv, Gl);
    std::printf("%s: t=%.2fus  max_p=%.1f bar  r_eq=%.0f um  -> %s\n", labels[snap],
                sim.time() * 1e6, d.max_p_field / 1e5, d.equivalent_radius * 1e6,
                path.c_str());
  }

  // Fig. 6: domain decomposition. Paint rank ownership of a 2x2x2 topology.
  {
    Field3D<float> ranks(64, 64, 64);
    for (int iz = 0; iz < 64; ++iz)
      for (int iy = 0; iy < 64; ++iy)
        for (int ix = 0; ix < 64; ++ix)
          ranks(ix, iy, iz) =
              static_cast<float>((ix / 32) + 2 * (iy / 32) + 4 * (iz / 32));
    const std::string path = outdir + "/fig6_decomposition.ppm";
    io::write_field_slice_ppm(path, std::as_const(ranks).view(), 16, 0, 7);
    std::printf("fig6 rank-ownership slice -> %s\n", path.c_str());
  }
  return 0;
}
