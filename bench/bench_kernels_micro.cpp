// Google-benchmark microbenchmarks of the core kernels and primitives —
// finer-grained companions to the table benches, useful for regression
// tracking of the hot paths.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "grid/lab.h"
#include "kernels/hlle.h"
#include "kernels/sos.h"
#include "kernels/update.h"
#include "kernels/weno.h"
#include "wavelet/interp_wavelet.h"

namespace {

using namespace mpcf;
using namespace mpcf::kernels;

struct BlockFixture {
  Grid grid{2, 2, 2, 32, 1e-3};
  BlockLab lab;
  RhsWorkspace ws;
  BlockFixture() {
    mpcf::bench::init_cloud_state(grid);
    lab.resize(32);
    ws.resize(32);
    lab.load(grid, 0, 0, 0, BoundaryConditions::all(BCType::kAbsorbing));
  }
};

BlockFixture& fixture() {
  static BlockFixture f;
  return f;
}

void BM_RhsScalar(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state)
    rhs_block(f.lab, static_cast<Real>(f.grid.h()), 0.0f, f.grid.block(0), f.ws,
              KernelImpl::kScalar);
  state.counters["GFLOP/s"] =
      benchmark::Counter(rhs_flops(32) * state.iterations() / 1e9,
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RhsScalar)->Unit(benchmark::kMillisecond);

void BM_RhsSimdStaged(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state)
    rhs_block(f.lab, static_cast<Real>(f.grid.h()), 0.0f, f.grid.block(0), f.ws,
              KernelImpl::kSimd);
  state.counters["GFLOP/s"] =
      benchmark::Counter(rhs_flops(32) * state.iterations() / 1e9,
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RhsSimdStaged)->Unit(benchmark::kMillisecond);

void BM_RhsSimdFused(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state)
    rhs_block(f.lab, static_cast<Real>(f.grid.h()), 0.0f, f.grid.block(0), f.ws,
              KernelImpl::kSimdFused);
  state.counters["GFLOP/s"] =
      benchmark::Counter(rhs_flops(32) * state.iterations() / 1e9,
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RhsSimdFused)->Unit(benchmark::kMillisecond);

void BM_SosScalar(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) benchmark::DoNotOptimize(block_max_speed(f.grid.block(0)));
}
BENCHMARK(BM_SosScalar)->Unit(benchmark::kMicrosecond);

void BM_SosSimd(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) benchmark::DoNotOptimize(block_max_speed_simd(f.grid.block(0)));
}
BENCHMARK(BM_SosSimd)->Unit(benchmark::kMicrosecond);

void BM_Update(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) update_block_simd(f.grid.block(0), 1e-12f);
}
BENCHMARK(BM_Update)->Unit(benchmark::kMicrosecond);

void BM_LabLoad(benchmark::State& state) {
  auto& f = fixture();
  const auto bc = BoundaryConditions::all(BCType::kAbsorbing);
  for (auto _ : state) f.lab.load(f.grid, 0, 0, 0, bc);
}
BENCHMARK(BM_LabLoad)->Unit(benchmark::kMicrosecond);

void BM_Weno5(benchmark::State& state) {
  float q[8] = {1.0f, 1.2f, 0.9f, 1.5f, 1.1f, 0.8f, 1.3f, 1.0f};
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        weno5_minus(q[i & 3], q[(i + 1) & 7], q[(i + 2) & 7], q[(i + 3) & 7],
                    q[(i + 4) & 7]));
    ++i;
  }
}
BENCHMARK(BM_Weno5);

void BM_Fwt32(benchmark::State& state) {
  Field3D<float> cube(32, 32, 32);
  for (int iz = 0; iz < 32; ++iz)
    for (int iy = 0; iy < 32; ++iy)
      for (int ix = 0; ix < 32; ++ix)
        cube(ix, iy, iz) = static_cast<float>(std::sin(0.2 * ix) + 0.1 * iy);
  for (auto _ : state) wavelet::forward_3d_simd(cube.view(), 3);
}
BENCHMARK(BM_Fwt32)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
