// Google-benchmark microbenchmarks of the core kernels and primitives —
// finer-grained companions to the table benches, useful for regression
// tracking of the hot paths. Every vectorized stage is measured at both
// SIMD widths (vec4 and, where the host executes it, vec8), and the lab
// assembly is measured on both paths (per-cell fetch vs bulk).
//
// `--json [path]` switches to a machine-readable mode: a compact timing
// sweep written as JSON (default BENCH_kernels.json), GFLOP/s per
// stage x width x impl plus the lab-assembly comparison.
#include <benchmark/benchmark.h>
#include <omp.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <vector>

#include "bench_util.h"
#include "grid/lab.h"
#include "kernels/hlle.h"
#include "kernels/sos.h"
#include "kernels/update.h"
#include "kernels/weno.h"
#include "simd/dispatch.h"
#include "wavelet/interp_wavelet.h"

namespace {

using namespace mpcf;
using namespace mpcf::kernels;

constexpr int kBs = 32;

struct BlockFixture {
  Grid grid{2, 2, 2, kBs, 1e-3};
  BlockLab lab;
  RhsWorkspace ws;
  BlockFixture() {
    mpcf::bench::init_cloud_state(grid);
    lab.resize(kBs);
    ws.resize(kBs);
    lab.load(grid, 0, 0, 0, BoundaryConditions::all(BCType::kAbsorbing));
  }
};

BlockFixture& fixture() {
  static BlockFixture f;
  return f;
}

bool vec8_usable() { return simd::host_executes(simd::Width::kW8); }

void rhs_bench(benchmark::State& state, KernelImpl impl, simd::Width width) {
  if (width == simd::Width::kW8 && !vec8_usable()) {
    state.SkipWithError("host cannot execute the vec8 backend");
    return;
  }
  auto& f = fixture();
  for (auto _ : state)
    rhs_block(f.lab, static_cast<Real>(f.grid.h()), 0.0f, f.grid.block(0), f.ws,
              impl, 5, width);
  state.counters["GFLOP/s"] =
      benchmark::Counter(rhs_flops(kBs) * state.iterations() / 1e9,
                         benchmark::Counter::kIsRate);
}

void BM_RhsScalar(benchmark::State& state) {
  rhs_bench(state, KernelImpl::kScalar, simd::Width::kScalar);
}
BENCHMARK(BM_RhsScalar)->Unit(benchmark::kMillisecond);

void BM_RhsSimdStagedW4(benchmark::State& state) {
  rhs_bench(state, KernelImpl::kSimd, simd::Width::kW4);
}
BENCHMARK(BM_RhsSimdStagedW4)->Unit(benchmark::kMillisecond);

void BM_RhsSimdStagedW8(benchmark::State& state) {
  rhs_bench(state, KernelImpl::kSimd, simd::Width::kW8);
}
BENCHMARK(BM_RhsSimdStagedW8)->Unit(benchmark::kMillisecond);

void BM_RhsSimdFusedW4(benchmark::State& state) {
  rhs_bench(state, KernelImpl::kSimdFused, simd::Width::kW4);
}
BENCHMARK(BM_RhsSimdFusedW4)->Unit(benchmark::kMillisecond);

void BM_RhsSimdFusedW8(benchmark::State& state) {
  rhs_bench(state, KernelImpl::kSimdFused, simd::Width::kW8);
}
BENCHMARK(BM_RhsSimdFusedW8)->Unit(benchmark::kMillisecond);

void BM_SosScalar(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) benchmark::DoNotOptimize(block_max_speed(f.grid.block(0)));
}
BENCHMARK(BM_SosScalar)->Unit(benchmark::kMicrosecond);

void BM_SosSimdW4(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state)
    benchmark::DoNotOptimize(block_max_speed_simd(f.grid.block(0), simd::Width::kW4));
}
BENCHMARK(BM_SosSimdW4)->Unit(benchmark::kMicrosecond);

void BM_SosSimdW8(benchmark::State& state) {
  if (!vec8_usable()) {
    state.SkipWithError("host cannot execute the vec8 backend");
    return;
  }
  auto& f = fixture();
  for (auto _ : state)
    benchmark::DoNotOptimize(block_max_speed_simd(f.grid.block(0), simd::Width::kW8));
}
BENCHMARK(BM_SosSimdW8)->Unit(benchmark::kMicrosecond);

void BM_UpdateW4(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) update_block_simd(f.grid.block(0), 1e-12f, simd::Width::kW4);
}
BENCHMARK(BM_UpdateW4)->Unit(benchmark::kMicrosecond);

void BM_UpdateW8(benchmark::State& state) {
  if (!vec8_usable()) {
    state.SkipWithError("host cannot execute the vec8 backend");
    return;
  }
  auto& f = fixture();
  for (auto _ : state) update_block_simd(f.grid.block(0), 1e-12f, simd::Width::kW8);
}
BENCHMARK(BM_UpdateW8)->Unit(benchmark::kMicrosecond);

void BM_LabLoadBulk(benchmark::State& state) {
  auto& f = fixture();
  const auto bc = BoundaryConditions::all(BCType::kAbsorbing);
  for (auto _ : state) f.lab.load(f.grid, 0, 0, 0, bc);
}
BENCHMARK(BM_LabLoadBulk)->Unit(benchmark::kMicrosecond);

void BM_LabLoadPerCell(benchmark::State& state) {
  auto& f = fixture();
  const auto bc = BoundaryConditions::all(BCType::kAbsorbing);
  for (auto _ : state)
    f.lab.load(f.grid, 0, 0, 0,
               [&](int ix, int iy, int iz) { return f.grid.cell_folded(ix, iy, iz, bc); });
}
BENCHMARK(BM_LabLoadPerCell)->Unit(benchmark::kMicrosecond);

void BM_Weno5(benchmark::State& state) {
  float q[8] = {1.0f, 1.2f, 0.9f, 1.5f, 1.1f, 0.8f, 1.3f, 1.0f};
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        weno5_minus(q[i & 3], q[(i + 1) & 7], q[(i + 2) & 7], q[(i + 3) & 7],
                    q[(i + 4) & 7]));
    ++i;
  }
}
BENCHMARK(BM_Weno5);

void BM_Fwt32(benchmark::State& state) {
  Field3D<float> cube(32, 32, 32);
  for (int iz = 0; iz < 32; ++iz)
    for (int iy = 0; iy < 32; ++iy)
      for (int ix = 0; ix < 32; ++ix)
        cube(ix, iy, iz) = static_cast<float>(std::sin(0.2 * ix) + 0.1 * iy);
  for (auto _ : state) wavelet::forward_3d_simd(cube.view(), 3);
}
BENCHMARK(BM_Fwt32)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// --json mode: a self-contained timing sweep, written as one JSON document.

double time_reps(int reps, const std::function<void()>& body) {
  body();  // warm up caches and page in the working set
  return mpcf::bench::time_best_of([&] {
    for (int i = 0; i < reps; ++i) body();
  }, 5) / reps;
}

int write_json(const char* path) {
  auto& f = fixture();
  const auto bc = BoundaryConditions::all(BCType::kAbsorbing);
  const bool w8 = vec8_usable();

  struct Entry {
    const char* stage;
    const char* impl;
    int width;
    double gflops;
  };
  std::vector<Entry> entries;

  auto rhs_gf = [&](KernelImpl impl, simd::Width w) {
    const double sec = time_reps(4, [&] {
      rhs_block(f.lab, static_cast<Real>(f.grid.h()), 0.0f, f.grid.block(0), f.ws,
                impl, 5, w);
    });
    return rhs_flops(kBs) / sec / 1e9;
  };
  entries.push_back({"rhs", "scalar", 1, rhs_gf(KernelImpl::kScalar, simd::Width::kScalar)});
  entries.push_back({"rhs", "staged", 4, rhs_gf(KernelImpl::kSimd, simd::Width::kW4)});
  entries.push_back({"rhs", "fused", 4, rhs_gf(KernelImpl::kSimdFused, simd::Width::kW4)});
  if (w8) {
    entries.push_back({"rhs", "staged", 8, rhs_gf(KernelImpl::kSimd, simd::Width::kW8)});
    entries.push_back({"rhs", "fused", 8, rhs_gf(KernelImpl::kSimdFused, simd::Width::kW8)});
  }

  volatile double sink = 0;
  auto sos_gf = [&](simd::Width w) {
    const double sec = time_reps(64, [&] {
      sink = block_max_speed_simd(f.grid.block(0), w);
    });
    return sos_flops(kBs) / sec / 1e9;
  };
  {
    const double sec = time_reps(64, [&] { sink = block_max_speed(f.grid.block(0)); });
    entries.push_back({"sos", "scalar", 1, sos_flops(kBs) / sec / 1e9});
  }
  entries.push_back({"sos", "simd", 4, sos_gf(simd::Width::kW4)});
  if (w8) entries.push_back({"sos", "simd", 8, sos_gf(simd::Width::kW8)});
  (void)sink;

  auto up_gf = [&](simd::Width w) {
    const double sec = time_reps(64, [&] {
      update_block_simd(f.grid.block(0), 1e-12f, w);
    });
    return update_flops(kBs) / sec / 1e9;
  };
  entries.push_back({"update", "simd", 1, up_gf(simd::Width::kScalar)});
  entries.push_back({"update", "simd", 4, up_gf(simd::Width::kW4)});
  if (w8) entries.push_back({"update", "simd", 8, up_gf(simd::Width::kW8)});
  // Store-variant split of the memory-bound update (the kAuto calibrator
  // picks between these per block size).
  auto up_variant_gf = [&](simd::Width w, UpdateVariant v) {
    const double sec = time_reps(64, [&] {
      update_block_variant(f.grid.block(0), 1e-12f, w, v);
    });
    return update_flops(kBs) / sec / 1e9;
  };
  entries.push_back({"update", "regular", 4, up_variant_gf(simd::Width::kW4, UpdateVariant::kRegular)});
  entries.push_back({"update", "stream", 4, up_variant_gf(simd::Width::kW4, UpdateVariant::kStream)});
  if (w8) {
    entries.push_back({"update", "regular", 8, up_variant_gf(simd::Width::kW8, UpdateVariant::kRegular)});
    entries.push_back({"update", "stream", 8, up_variant_gf(simd::Width::kW8, UpdateVariant::kStream)});
  }
  const UpdateChoice auto_choice = update_auto_choice(kBs, simd::Width::kAuto);

  const double lab_cell_s = time_reps(16, [&] {
    f.lab.load(f.grid, 0, 0, 0,
               [&](int ix, int iy, int iz) { return f.grid.cell_folded(ix, iy, iz, bc); });
  });
  const double lab_bulk_s = time_reps(16, [&] { f.lab.load(f.grid, 0, 0, 0, bc); });

  // mpcf-lint: allow(raw-io): bench JSON report; SafeFile atomicity is pointless for a rewritable artifact
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"kernels_micro\",\n");
  std::fprintf(out, "  \"block_size\": %d,\n", kBs);
  std::fprintf(out, "  \"dispatch_width\": \"%s\",\n",
               simd::width_name(simd::dispatch_width()));
  // Core count of the measuring host: single-core datapoints say nothing
  // about the multi-threaded step schedules, so consumers must check this.
  std::fprintf(out, "  \"cores\": %d,\n", omp_get_num_procs());
  std::fprintf(out, "  \"single_core\": %s,\n", omp_get_num_procs() == 1 ? "true" : "false");
  std::fprintf(out, "  \"update_auto\": {\"width\": %d, \"variant\": \"%s\"},\n",
               simd::lanes(auto_choice.width), update_variant_name(auto_choice.variant));
  std::fprintf(out, "  \"kernels\": [\n");
  for (std::size_t i = 0; i < entries.size(); ++i)
    std::fprintf(out,
                 "    {\"stage\": \"%s\", \"impl\": \"%s\", \"width\": %d, "
                 "\"gflops\": %.3f}%s\n",
                 entries[i].stage, entries[i].impl, entries[i].width, entries[i].gflops,
                 i + 1 < entries.size() ? "," : "");
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"lab_assembly\": {\"per_cell_us\": %.2f, \"bulk_us\": %.2f, "
               "\"speedup\": %.2f}\n",
               lab_cell_s * 1e6, lab_bulk_s * 1e6, lab_cell_s / lab_bulk_s);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) {
      const char* path =
          (i + 1 < argc && argv[i + 1][0] != '-') ? argv[i + 1] : "BENCH_kernels.json";
      return write_json(path);
    }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
