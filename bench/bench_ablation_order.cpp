// Ablation: the spatial-order key decision (paper Section 5 — "we employ a
// third-order ... time stepping scheme combined with a fifth order WENO
// scheme", trading more flops per step for fewer cells/steps at equal
// accuracy). A smooth density wave is advected through a periodic domain by
// a uniform flow; the L1 error against the exact translated profile and the
// wall-clock cost are compared for WENO3 vs WENO5 at two resolutions.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/simulation.h"
#include "eos/stiffened_gas.h"

using namespace mpcf;

namespace {

struct Run {
  double l1_error;
  double seconds;
  long steps;
};

Run advect(int blocks, int order) {
  Simulation::Params params;
  params.extent = 1.0;
  params.bc = BoundaryConditions::all(BCType::kPeriodic);
  params.weno_order = order;
  params.rho_floor = 0;  // smooth flow: no guard interference
  params.p_floor = 0;
  Simulation sim(blocks, 1, 1, 8, params);
  Grid& g = sim.grid();

  const double u0 = 30.0;  // advection speed [m/s], subsonic in liquid
  const double G = materials::kLiquid.Gamma(), Pi = materials::kLiquid.Pi();
  const double p0 = 100e5;
  auto rho_profile = [](double x) { return 1000.0 * (1.0 + 0.05 * std::sin(2 * M_PI * x)); };
  for (int iz = 0; iz < g.cells_z(); ++iz)
    for (int iy = 0; iy < g.cells_y(); ++iy)
      for (int ix = 0; ix < g.cells_x(); ++ix) {
        const double rho = rho_profile(g.cell_center(ix));
        Cell c;
        c.rho = static_cast<Real>(rho);
        c.ru = static_cast<Real>(rho * u0);
        c.G = static_cast<Real>(G);
        c.P = static_cast<Real>(Pi);
        c.E = static_cast<Real>(G * p0 + Pi + 0.5 * rho * u0 * u0);
        g.cell(ix, iy, iz) = c;
      }

  const double T = 0.2 / u0;  // advect 20% of the domain
  Timer t;
  while (sim.time() < T) sim.step();
  Run r;
  r.seconds = t.seconds();
  r.steps = sim.step_count();

  double err = 0;
  for (int ix = 0; ix < g.cells_x(); ++ix) {
    const double exact = rho_profile(g.cell_center(ix) - u0 * sim.time());
    err += std::fabs(g.cell(ix, 3, 3).rho - exact);
  }
  r.l1_error = err / g.cells_x();
  return r;
}

}  // namespace

int main() {
  std::puts("=== Ablation: WENO5 (production) vs WENO3, smooth advection ===");
  std::printf("%-8s %8s %12s %10s %8s\n", "order", "cells", "L1 error", "time [s]",
              "steps");
  Run results[2][2];
  const int orders[2] = {3, 5};
  const int sizes[2] = {4, 8};  // 32 and 64 cells along x
  for (int oi = 0; oi < 2; ++oi)
    for (int si = 0; si < 2; ++si) {
      results[oi][si] = advect(sizes[si], orders[oi]);
      std::printf("WENO%-4d %8d %12.3e %10.3f %8ld\n", orders[oi], sizes[si] * 8,
                  results[oi][si].l1_error, results[oi][si].seconds,
                  results[oi][si].steps);
    }

  std::printf("\nerror ratio WENO3/WENO5 at 64 cells: %.1fx\n",
              results[0][1].l1_error / results[1][1].l1_error);
  std::printf("cost ratio WENO5/WENO3 at 64 cells:  %.2fx\n",
              results[1][1].seconds / results[0][1].seconds);
  std::puts("\nKey-decision check (paper Section 5): the higher-order scheme");
  std::puts("costs moderately more per step but is far more accurate, so at");
  std::puts("fixed accuracy it needs a much coarser grid / fewer steps —");
  std::puts("the basis for choosing WENO5 despite the bigger stencil.");
  return 0;
}
