// Table 6 analogue: node-to-cluster performance degradation. The same
// workload runs (a) through the node layer alone (no rank decomposition, no
// messages) and (b) through the cluster layer; the paper sees ~2% loss for
// RHS/UP and a large relative loss for DT, whose global scalar reduction
// cannot be hidden (60% of its node-level fraction at 1 rack: 18% -> 7%).
#include <cstdio>

#include "bench_util.h"
#include "cluster/cluster_simulation.h"
#include "kernels/sos.h"
#include "kernels/update.h"
#include "perf/microbench.h"

using namespace mpcf;
using namespace mpcf::cluster;

namespace {

struct Split {
  double rhs_pct, dt_pct, up_pct, all_pct;
};

Split pct_of_peak(const StepProfile& prof, double comm, int blocks, int bs, int steps) {
  const double peak = perf::host_machine().peak_gflops * 1e9;
  const double f_dt = static_cast<double>(steps) * blocks * kernels::sos_flops(bs);
  const double f_up =
      static_cast<double>(steps) * LsRk3::kStages * blocks * kernels::update_flops(bs);
  const double f_rhs =
      static_cast<double>(steps) * LsRk3::kStages * blocks * kernels::rhs_flops(bs);
  return {100.0 * f_rhs / prof.rhs / peak, 100.0 * f_dt / prof.dt / peak,
          100.0 * f_up / prof.up / peak,
          100.0 * (f_rhs + f_dt + f_up) / (prof.total() + comm) / peak};
}

}  // namespace

int main() {
  const int bs = 16, ba = 4, steps = 8;  // 64^3 cells

  // Node layer alone.
  Simulation::Params params;
  params.extent = 1e-3;
  Simulation node(ba, ba, ba, bs, params);
  mpcf::bench::init_cloud_state(node.grid(), 8);
  for (int s = 0; s < steps; ++s) node.step();
  const Split n = pct_of_peak(node.profile(), 0.0, node.grid().block_count(), bs, steps);

  // Cluster layer, 2x2x2 ranks over the same global problem.
  ClusterSimulation cl(ba, ba, ba, bs, CartTopology(2, 2, 2), params);
  Grid tmp(ba, ba, ba, bs, params.extent);
  mpcf::bench::init_cloud_state(tmp, 8);
  for (int r = 0; r < cl.rank_count(); ++r) {
    Grid& rg = cl.rank_sim(r).grid();
    int cx, cy, cz;
    cl.topology().coords(r, cx, cy, cz);
    for (int iz = 0; iz < rg.cells_z(); ++iz)
      for (int iy = 0; iy < rg.cells_y(); ++iy)
        for (int ix = 0; ix < rg.cells_x(); ++ix)
          rg.cell(ix, iy, iz) = tmp.cell(cx * rg.cells_x() + ix, cy * rg.cells_y() + iy,
                                         cz * rg.cells_z() + iz);
  }
  for (int s = 0; s < steps; ++s) cl.step();
  const Split c =
      pct_of_peak(cl.profile(), cl.comm_time(), tmp.block_count(), bs, steps);

  std::puts("=== Table 6 analogue: node-to-cluster degradation ===");
  std::printf("%-22s %8s %8s %8s %8s\n", "", "RHS", "DT", "UP", "ALL");
  std::printf("%-22s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", "node layer (1 proc)", n.rhs_pct,
              n.dt_pct, n.up_pct, n.all_pct);
  std::printf("%-22s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", "cluster (2x2x2 ranks)",
              c.rhs_pct, c.dt_pct, c.up_pct, c.all_pct);
  std::printf("%-22s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", "relative loss",
              100 * (1 - c.rhs_pct / n.rhs_pct), 100 * (1 - c.dt_pct / n.dt_pct),
              100 * (1 - c.up_pct / n.up_pct), 100 * (1 - c.all_pct / n.all_pct));
  std::puts("\npaper Table 6: RHS 62->60%, DT 18->7%, UP 3->2%, ALL 55->53%:");
  std::puts("the DT reduction suffers most from clusterization; RHS loses ~2-3%");
  std::puts("to ghost reconstruction across ranks.");
  return 0;
}
