// Table 5 analogue: achieved fraction of peak per kernel as the simulated
// cluster grows (weak scaling: constant blocks per rank). The paper reports
// RHS 60/57/55 %, DT 7/5/5 %, UP 2/2/2 %, ALL 53/51/50 % at 1/24/96 racks —
// near-flat RHS scaling with a slow communication-driven decay. Here the
// ranks are simulated in-process, so "peak" is the measured host core peak
// and the rank axis exercises the real cluster-layer code paths (halo
// messages, collectives, halo/interior split).
#include <cstdio>

#include "bench_util.h"
#include "cluster/cluster_simulation.h"
#include "kernels/sos.h"
#include "kernels/update.h"
#include "perf/microbench.h"

using namespace mpcf;
using namespace mpcf::cluster;

namespace {

struct Result {
  double rhs_pct, dt_pct, up_pct, all_pct, gflops;
  std::uint64_t msg_bytes;
};

Result run(int rr, int bs, int blocks_per_rank_axis) {
  const int gba = rr * blocks_per_rank_axis;
  Simulation::Params params;
  params.extent = 1e-3 * rr;
  ClusterSimulation cs(gba, blocks_per_rank_axis, blocks_per_rank_axis, bs,
                       CartTopology(rr, 1, 1), params);
  for (int r = 0; r < cs.rank_count(); ++r)
    mpcf::bench::init_cloud_state(cs.rank_sim(r).grid(), 4, 42 + r);

  const int steps = 6;
  for (int s = 0; s < steps; ++s) cs.step();

  const StepProfile prof = cs.profile();
  double flops_rhs = 0, flops_dt = 0, flops_up = 0;
  for (int r = 0; r < cs.rank_count(); ++r) {
    const double per_step = cs.rank_sim(r).flops_per_step();
    const int nb = cs.rank_sim(r).grid().block_count();
    flops_dt += steps * nb * kernels::sos_flops(bs);
    flops_up += steps * LsRk3::kStages * nb * kernels::update_flops(bs);
    flops_rhs += steps * per_step - steps * nb * kernels::sos_flops(bs) -
                 steps * LsRk3::kStages * nb * kernels::update_flops(bs);
  }
  const double peak = perf::host_machine().peak_gflops * 1e9;
  Result res;
  res.rhs_pct = 100.0 * flops_rhs / prof.rhs / peak;
  res.dt_pct = 100.0 * flops_dt / prof.dt / peak;
  res.up_pct = 100.0 * flops_up / prof.up / peak;
  const double total_time = prof.total() + cs.comm_time();
  res.all_pct = 100.0 * (flops_rhs + flops_dt + flops_up) / total_time / peak;
  res.gflops = (flops_rhs + flops_dt + flops_up) / total_time / 1e9;
  res.msg_bytes = cs.comm().stats().bytes;
  return res;
}

}  // namespace

int main() {
  std::puts("=== Table 5 analogue: achieved performance, weak scaling over ranks ===");
  std::printf("(blocks per rank fixed; host peak %.1f GFLOP/s)\n\n",
              perf::host_machine().peak_gflops);
  std::printf("%-10s %8s %8s %8s %8s %10s %12s\n", "ranks", "RHS", "DT", "UP", "ALL",
              "GFLOP/s", "halo MB/step");
  for (int rr : {1, 2, 4, 8}) {
    const Result r = run(rr, 16, 2);
    std::printf("%-10d %7.1f%% %7.1f%% %7.1f%% %7.1f%% %10.2f %12.2f\n", rr, r.rhs_pct,
                r.dt_pct, r.up_pct, r.all_pct, r.gflops,
                r.msg_bytes / 6.0 / 1e6);  // per step (6 steps)
  }
  std::puts("\npaper Table 5 (BGQ racks):   RHS      DT      UP     ALL");
  std::puts("  1 rack                     60%      7%      2%     53%");
  std::puts(" 24 racks                    57%      5%      2%     51%");
  std::puts(" 96 racks                    55%      5%      2%     50%");
  std::puts("\nShape check: RHS dominates and stays near-flat with rank count;");
  std::puts("DT is low (reduction-bound), UP is memory-bound at a few percent.");
  return 0;
}
