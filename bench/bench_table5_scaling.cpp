// Table 5 analogue: achieved fraction of peak per kernel as the simulated
// cluster grows (weak scaling: constant blocks per rank). The paper reports
// RHS 60/57/55 %, DT 7/5/5 %, UP 2/2/2 %, ALL 53/51/50 % at 1/24/96 racks —
// near-flat RHS scaling with a slow communication-driven decay. Here the
// ranks are simulated in-process, so "peak" is the measured host core peak
// and the rank axis exercises the real cluster-layer code paths (halo
// messages, collectives, halo/interior split).
//
// --json [PATH] switches to the measured-vs-modeled weak-scaling sweep
// (default PATH: BENCH_scaling.json): every rank count is run BOTH ways —
// all ranks in one process (the in-memory oracle) and as real processes
// through tools/mpcf-run over the shared-memory transport — and compared
// against an analytic model built from the single-rank step time, the
// measured halo traffic, and the host core/bandwidth budget. The MP rank
// processes re-exec THIS binary (--worker mode) under the launcher.
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cluster/cluster_simulation.h"
#include "cluster/transport.h"
#include "core/profile.h"
#include "kernels/sos.h"
#include "kernels/update.h"
#include "perf/microbench.h"

using namespace mpcf;
using namespace mpcf::cluster;

namespace {

struct Result {
  double rhs_pct, dt_pct, up_pct, all_pct, gflops;
  std::uint64_t msg_bytes;
};

Result run(int rr, int bs, int blocks_per_rank_axis) {
  const int gba = rr * blocks_per_rank_axis;
  Simulation::Params params;
  params.extent = 1e-3 * rr;
  ClusterSimulation cs(gba, blocks_per_rank_axis, blocks_per_rank_axis, bs,
                       CartTopology(rr, 1, 1), params);
  for (int r = 0; r < cs.rank_count(); ++r)
    mpcf::bench::init_cloud_state(cs.rank_sim(r).grid(), 4, 42 + r);

  const int steps = 6;
  for (int s = 0; s < steps; ++s) cs.step();

  const StepProfile prof = cs.profile();
  double flops_rhs = 0, flops_dt = 0, flops_up = 0;
  for (int r = 0; r < cs.rank_count(); ++r) {
    const double per_step = cs.rank_sim(r).flops_per_step();
    const int nb = cs.rank_sim(r).grid().block_count();
    flops_dt += steps * nb * kernels::sos_flops(bs);
    flops_up += steps * LsRk3::kStages * nb * kernels::update_flops(bs);
    flops_rhs += steps * per_step - steps * nb * kernels::sos_flops(bs) -
                 steps * LsRk3::kStages * nb * kernels::update_flops(bs);
  }
  const double peak = perf::host_machine().peak_gflops * 1e9;
  Result res;
  res.rhs_pct = 100.0 * flops_rhs / prof.rhs / peak;
  res.dt_pct = 100.0 * flops_dt / prof.dt / peak;
  res.up_pct = 100.0 * flops_up / prof.up / peak;
  const double total_time = prof.total() + cs.comm_time();
  res.all_pct = 100.0 * (flops_rhs + flops_dt + flops_up) / total_time / peak;
  res.gflops = (flops_rhs + flops_dt + flops_up) / total_time / 1e9;
  res.msg_bytes = cs.comm().stats().bytes;
  return res;
}

// --- measured-vs-modeled weak scaling (--json) ----------------------------

constexpr int kWeakBs = 16;
constexpr int kWeakBlocksAxis = 2;  ///< per-rank blocks per axis (weak: fixed)
constexpr int kWeakSteps = 4;

/// One weak-scaling workload over whatever transport the environment gives
/// us: rr ranks on a rr x 1 x 1 pencil topology, identical per-rank state.
/// Returns the wall-clock of the step loop (on this process).
double run_weak_workload(int rr, SimComm::Stats* stats) {
  Simulation::Params params;
  params.extent = 1e-3 * rr;
  ClusterSimulation cs(rr * kWeakBlocksAxis, kWeakBlocksAxis, kWeakBlocksAxis, kWeakBs,
                       CartTopology(rr, 1, 1), params, make_env_transport(rr));
  for (int r : cs.local_ranks())
    mpcf::bench::init_cloud_state(cs.rank_sim(r).grid(), 4, 42 + r);
  Timer timer;
  for (int s = 0; s < kWeakSteps; ++s) cs.step();
  const double seconds = timer.seconds();
  if (stats != nullptr) *stats = cs.comm().stats();
  return seconds;
}

/// Child mode under mpcf-run: runs the workload over the shm transport and
/// prints the rank-0 step-loop seconds for the parent to harvest.
int worker_main(int rr) {
  const double seconds = run_weak_workload(rr, nullptr);
  if (std::getenv("MPCF_RANK") != nullptr && std::atoi(std::getenv("MPCF_RANK")) == 0)
    std::printf("STEP_SECONDS %.9f\n", seconds);
  return 0;
}

/// Launches `mpcf-run -n rr <self> --worker rr` and parses rank 0's
/// step-loop seconds from its stdout. Returns <0 on failure.
double run_weak_multiprocess(const std::string& self, int rr) {
  const std::string cmd = "OMP_NUM_THREADS=1 " + std::string(MPCF_RUN_PATH) + " -n " +
                          std::to_string(rr) + " -- " + self + " --worker " +
                          std::to_string(rr);
  std::FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return -1;
  double seconds = -1;
  char line[256];
  while (std::fgets(line, sizeof(line), pipe) != nullptr) {
    double v = 0;
    if (std::sscanf(line, "STEP_SECONDS %lf", &v) == 1) seconds = v;
  }
  const int rc = ::pclose(pipe);
  return rc == 0 ? seconds : -1;
}

int write_scaling_json(const char* path, const std::string& self) {
  // One OpenMP thread everywhere: the sweep isolates transport and
  // contention effects, not the node-layer thread scaling (fig9 covers that).
  ::setenv("OMP_NUM_THREADS", "1", 1);
  const int cores = std::max(1u, std::thread::hardware_concurrency());
  const double bw = perf::host_machine().mem_bw_gbs * 1e9;
  constexpr double kMsgLatency = 2e-6;  ///< shm per-message overhead (frame+futex)

  struct Point {
    int ranks;
    double inproc_s, mp_s, modeled_s;
    double halo_mb_step;
    std::uint64_t msgs;
  };
  std::vector<Point> pts;
  double t1 = 0;
  for (int rr : {1, 2, 4, 8}) {
    Point p{};
    p.ranks = rr;
    SimComm::Stats stats;
    p.inproc_s = run_weak_workload(rr, &stats);
    p.mp_s = run_weak_multiprocess(self, rr);
    if (p.mp_s < 0) {
      std::fprintf(stderr, "mpcf-run sweep failed at %d ranks\n", rr);
      return 1;
    }
    if (rr == 1) t1 = p.inproc_s;
    p.halo_mb_step = static_cast<double>(stats.bytes) / kWeakSteps / 1e6;
    p.msgs = stats.messages;
    // Model: per-rank compute serializes over min(rr, cores) cores; every
    // halo byte crosses DRAM twice (ring write + ring read); each message
    // pays a fixed framing/wakeup latency. Bytes/messages are the measured
    // totals of the whole run (the in-process oracle counts all ranks).
    const double compute = t1 * rr / std::min(rr, cores);
    const double comm = 2.0 * static_cast<double>(stats.bytes) / bw +
                        kMsgLatency * static_cast<double>(stats.messages);
    p.modeled_s = compute + comm;
    pts.push_back(p);
  }

  // mpcf-lint: allow(raw-io): bench JSON report, not simulation data — no atomicity/integrity requirements
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"table5_scaling\",\n");
  std::fprintf(out, "  \"mode\": \"weak\",\n");
  std::fprintf(out,
               "  \"per_rank\": {\"blocks\": [%d, %d, %d], \"block_size\": %d, "
               "\"steps\": %d},\n",
               kWeakBlocksAxis, kWeakBlocksAxis, kWeakBlocksAxis, kWeakBs, kWeakSteps);
  std::fprintf(out, "  \"host\": {\"cores\": %d, \"mem_bw_gbs\": %.1f},\n", cores,
               bw / 1e9);
  std::fprintf(out, "  \"transports\": {\"inproc\": \"in-memory mailbox (oracle)\", "
                    "\"mp\": \"mpcf-run + shm rings\"},\n");
  std::fprintf(out,
               "  \"efficiency_def\": \"t1*N / (tN * min(N, cores)): weak-scaling "
               "efficiency normalized by the cores actually available\",\n");
  std::fprintf(out, "  \"curves\": [\n");
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const Point& p = pts[i];
    const auto eff = [&](double tn) {
      return t1 * p.ranks / (tn * std::min(p.ranks, cores));
    };
    std::fprintf(out,
                 "    {\"ranks\": %d, \"measured_mp_step_seconds\": %.6f, "
                 "\"measured_inproc_step_seconds\": %.6f, "
                 "\"modeled_step_seconds\": %.6f, \"halo_mb_per_step\": %.3f, "
                 "\"efficiency_measured\": %.3f, \"efficiency_modeled\": %.3f}%s\n",
                 p.ranks, p.mp_s / kWeakSteps, p.inproc_s / kWeakSteps,
                 p.modeled_s / kWeakSteps, p.halo_mb_step, eff(p.mp_s),
                 eff(p.modeled_s), i + 1 < pts.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--worker") == 0 && i + 1 < argc)
      return worker_main(std::atoi(argv[i + 1]));
    if (std::strcmp(argv[i], "--json") == 0) {
      const char* path =
          (i + 1 < argc && argv[i + 1][0] != '-') ? argv[i + 1] : "BENCH_scaling.json";
      return write_scaling_json(path, argv[0]);
    }
  }

  std::puts("=== Table 5 analogue: achieved performance, weak scaling over ranks ===");
  std::printf("(blocks per rank fixed; host peak %.1f GFLOP/s)\n\n",
              perf::host_machine().peak_gflops);
  std::printf("%-10s %8s %8s %8s %8s %10s %12s\n", "ranks", "RHS", "DT", "UP", "ALL",
              "GFLOP/s", "halo MB/step");
  for (int rr : {1, 2, 4, 8}) {
    const Result r = run(rr, 16, 2);
    std::printf("%-10d %7.1f%% %7.1f%% %7.1f%% %7.1f%% %10.2f %12.2f\n", rr, r.rhs_pct,
                r.dt_pct, r.up_pct, r.all_pct, r.gflops,
                r.msg_bytes / 6.0 / 1e6);  // per step (6 steps)
  }
  std::puts("\npaper Table 5 (BGQ racks):   RHS      DT      UP     ALL");
  std::puts("  1 rack                     60%      7%      2%     53%");
  std::puts(" 24 racks                    57%      5%      2%     51%");
  std::puts(" 96 racks                    55%      5%      2%     50%");
  std::puts("\nShape check: RHS dominates and stays near-flat with rank count;");
  std::puts("DT is low (reduction-bound), UP is memory-bound at a few percent.");
  return 0;
}
