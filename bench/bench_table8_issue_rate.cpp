// Table 8 analogue: performance upper bound of the RHS stages from the
// instruction issue rate. The paper counts QPX instructions in the compiled
// stages and derives FLOP/instruction densities of 1.10-1.56 (x4), bounding
// the RHS at 76% of peak — peak requires pure FMA streams (8 flops per
// 4-wide instruction) and these kernels cannot fuse everything. We compute
// the same model from our kernel expression trees.
#include <cstdio>

#include "perf/issue_rate.h"

int main() {
  using namespace mpcf::perf;
  const auto model = issue_rate_model(32);

  std::puts("=== Table 8 analogue: issue-rate performance bounds ===");
  std::printf("%-8s %8s %16s %8s\n", "stage", "weight", "FLOP/instr", "peak");
  for (const auto& s : model)
    std::printf("%-8s %7.1f%% %11.2f x 4 %7.0f%%\n", s.name.c_str(), 100 * s.weight,
                s.flops_per_instr, 100 * s.peak_bound);

  std::puts("\npaper Table 8:  CONV 1% 1.10x4 55% | WENO 83% 1.56x4 78% |");
  std::puts("               HLLE 13% 1.30x4 65% | SUM 2% 1.22x4 61% | ALL 1.51x4 76%");
  std::puts("\nShape check: WENO dominates the work and has the highest density;");
  std::puts("no stage can exceed ~80% of peak, bounding the whole RHS kernel.");
  return 0;
}
