// Ablation: encoder choices of the compression pipeline (paper Section 5).
// Two design claims are tested: (a) concatenating the detail coefficients of
// adjacent blocks into one per-thread stream compresses better than encoding
// each block independently ("the detail coefficients of adjacent blocks are
// expected to assume similar ranges"); (b) the zlib effort level trades
// encode time against rate.
#include <zlib.h>

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "compression/compressor.h"
#include "wavelet/interp_wavelet.h"

using namespace mpcf;

namespace {

std::size_t zlib_size(const std::uint8_t* src, std::size_t n, int level) {
  uLongf bound = compressBound(static_cast<uLong>(n));
  std::vector<std::uint8_t> out(bound);
  compress2(out.data(), &bound, src, static_cast<uLong>(n), level);
  return bound;
}

}  // namespace

int main() {
  Grid grid(4, 4, 4, 16, 2e-3);  // 64^3
  mpcf::bench::init_cloud_state(grid, 12);

  // Transform + decimate every block once, keep the coefficient cubes.
  const int bs = 16, levels = wavelet::max_levels(bs);
  const float eps = 2.3e-3f;
  std::vector<std::vector<std::uint8_t>> cubes;
  for (int b = 0; b < grid.block_count(); ++b) {
    Field3D<float> cube(bs, bs, bs);
    int x, y, z;
    grid.indexer().coords(b, x, y, z);
    for (int iz = 0; iz < bs; ++iz)
      for (int iy = 0; iy < bs; ++iy)
        for (int ix = 0; ix < bs; ++ix)
          cube(ix, iy, iz) = grid.block(b)(ix, iy, iz).G;
    wavelet::forward_3d(cube.view(), levels);
    wavelet::decimate(cube.view(), levels, eps);
    // mpcf-lint: allow(reinterpret-cast): float->byte view of wavelet coefficients for the encoder ablation
    const auto* p = reinterpret_cast<const std::uint8_t*>(cube.data());
    cubes.emplace_back(p, p + cube.size() * sizeof(float));
  }

  const std::size_t raw = cubes.size() * cubes[0].size();

  std::puts("=== Ablation: per-block encoding vs concatenated streams ===");
  std::size_t per_block = 0;
  for (const auto& c : cubes) per_block += zlib_size(c.data(), c.size(), 6);
  std::vector<std::uint8_t> concat;
  for (const auto& c : cubes) concat.insert(concat.end(), c.begin(), c.end());
  const std::size_t merged = zlib_size(concat.data(), concat.size(), 6);
  std::printf("per-block encoding:  %8zu B  (rate %5.1f:1)\n", per_block,
              double(raw) / per_block);
  std::printf("concatenated stream: %8zu B  (rate %5.1f:1, %.0f%% smaller)\n", merged,
              double(raw) / merged, 100.0 * (1.0 - double(merged) / per_block));

  std::puts("\n=== Ablation: zlib effort level (concatenated stream) ===");
  std::printf("%-8s %12s %12s %12s\n", "level", "bytes", "rate", "time [ms]");
  for (int level : {1, 3, 6, 9}) {
    Timer t;
    const std::size_t sz = zlib_size(concat.data(), concat.size(), level);
    std::printf("%-8d %12zu %11.1f:1 %12.2f\n", level, sz, double(raw) / sz,
                t.seconds() * 1e3);
  }
  std::puts("\n=== Ablation: coder backend (zlib vs sparse+zlib) ===");
  {
    using namespace mpcf::compression;
    CompressionParams pz;
    pz.eps = eps;
    pz.quantity = Q_G;
    CompressionParams ps = pz;
    ps.coder = Coder::kSparseZlib;
    Timer tz;
    const auto cq_z = compress_quantity(grid, pz);
    const double t_z = tz.seconds();
    Timer ts;
    const auto cq_s = compress_quantity(grid, ps);
    const double t_s = ts.seconds();
    std::printf("%-22s %10.1f:1 %10.2f ms\n", "zlib (paper)", cq_z.compression_rate(),
                t_z * 1e3);
    std::printf("%-22s %10.1f:1 %10.2f ms\n", "sparse+zlib", cq_s.compression_rate(),
                t_s * 1e3);
  }

  std::puts("\npaper design check: stream concatenation buys a measurably better");
  std::puts("rate for free — the basis for the per-thread buffer design (Fig. 3);");
  std::puts("the sparse significance coder (the zerotree/SPIHT-style alternative)");
  std::puts("trades coder complexity against zlib's general-purpose modeling.");
  return 0;
}
