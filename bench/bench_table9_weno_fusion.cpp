// Table 9 analogue: micro-fusion of the WENO and HLLE stages. The paper's
// baseline stores WENO face reconstructions to memory and runs HLLE as a
// second pass; the fused kernel mixes both instruction streams in registers,
// gaining 1.2X in GFLOP/s and 1.3X in cycles. We time the staged SIMD RHS
// (kSimd) against the micro-fused one (kSimdFused) on identical blocks.
#include <cstdio>

#include "bench_util.h"
#include "grid/lab.h"
#include "perf/microbench.h"

using namespace mpcf;
using namespace mpcf::kernels;

int main() {
  const int bs = 32;
  Grid grid(2, 2, 2, bs, 1e-3);
  mpcf::bench::init_cloud_state(grid);

  BlockLab lab;
  lab.resize(bs);
  RhsWorkspace ws;
  ws.resize(bs);
  lab.load(grid, 0, 0, 0, BoundaryConditions::all(BCType::kAbsorbing));

  const int reps = 6;
  const double flops = rhs_flops(bs) * reps;
  const double t_staged = mpcf::bench::time_best_of([&] {
    for (int i = 0; i < reps; ++i)
      rhs_block(lab, static_cast<Real>(grid.h()), 0.0f, grid.block(0), ws,
                KernelImpl::kSimd);
  }, 5);
  const double t_fused = mpcf::bench::time_best_of([&] {
    for (int i = 0; i < reps; ++i)
      rhs_block(lab, static_cast<Real>(grid.h()), 0.0f, grid.block(0), ws,
                KernelImpl::kSimdFused);
  }, 5);

  const double peak = perf::host_machine().peak_gflops;
  // Memory the fused kernel avoids round-tripping: 14 face arrays of
  // (bs+1)*bs^2 floats per direction, written by WENO and re-read by HLLE.
  const double avoided_mb =
      3.0 * 2.0 * 14.0 * (bs + 1.0) * bs * bs * sizeof(Real) / 1e6;

  std::puts("=== Table 9 analogue: micro-fused vs staged WENO+HLLE ===");
  std::printf("%-24s %12s %12s\n", "", "Baseline", "Fused");
  std::printf("%-24s %12.2f %12.2f\n", "Performance [GFLOP/s]", flops / t_staged / 1e9,
              flops / t_fused / 1e9);
  std::printf("%-24s %11.1f%% %11.1f%%\n", "Peak fraction",
              100 * flops / t_staged / 1e9 / peak, 100 * flops / t_fused / 1e9 / peak);
  std::printf("%-24s %12s %11.2fX\n", "GFLOP/s improvement", "-",
              t_staged / t_fused);
  std::printf("%-24s %12s %11.2fX\n", "Time improvement", "-", t_staged / t_fused);
  std::printf("%-24s %12s %11.1f MB\n", "traffic avoided/block", "-", avoided_mb);
  std::puts("\npaper Table 9: 7.9 -> 9.2 GFLOP/s (1.2X), 1.3X in cycles: fusion");
  std::puts("keeps the face states in registers instead of round-tripping the");
  std::puts("cache hierarchy. On the BQC (32 MB L2 shared by 64 threads, ridge");
  std::puts("7.3 F/B) that traffic costs 20-30%; on a large-L3 x86 host the");
  std::puts("staged round-trip is absorbed and the two variants time the same —");
  std::puts("the deviation and its cause are recorded in EXPERIMENTS.md.");
  return 0;
}
