// Table 3 analogue: operational intensity of the step kernels with naive vs
// reordered data access, and the roofline-implied maximum gain. The paper
// reports RHS 1.4 -> 21 FLOP/B (15X), DT 1.3 -> 5.1 (3.9X), UP 0.2 -> 0.2
// (1X); our kernels have their own flop counts, so the absolute values
// differ while the structure must match. The DT row is additionally
// *measured* by traversing the same data in blocked vs plane-strided order.
#include <cstdio>

#include "bench_util.h"
#include "kernels/sos.h"
#include "perf/microbench.h"
#include "perf/oi_model.h"

using namespace mpcf;
using namespace mpcf::perf;

namespace {

/// Naive z-major strided reduction over a multi-block grid: visits cells in
/// an order that strides across blocks, defeating the cache.
double naive_strided_max_speed(const Grid& grid) {
  double vmax = 0;
  // z-major: worst-possible stride pattern for the AoS block layout.
  for (int ix = 0; ix < grid.cells_x(); ++ix)
    for (int iy = 0; iy < grid.cells_y(); ++iy)
      for (int iz = 0; iz < grid.cells_z(); ++iz) {
        const Cell& c = grid.cell(ix, iy, iz);
        const double invr = 1.0 / c.rho;
        const double ke =
            0.5 * (double(c.ru) * c.ru + double(c.rv) * c.rv + double(c.rw) * c.rw) * invr;
        const double p = (c.E - ke - c.P) / c.G;
        const double c2 = std::max((p * (c.G + 1.0) + c.P) / (double(c.G) * c.rho), 0.0);
        const double umax = std::max({std::fabs(double(c.ru)), std::fabs(double(c.rv)),
                                      std::fabs(double(c.rw))}) * invr;
        vmax = std::max(vmax, umax + std::sqrt(c2));
      }
  return vmax;
}

}  // namespace

int main() {
  const int bs = 32;
  std::puts("=== Table 3 analogue: potential gain due to data reordering ===");
  std::printf("%-12s %12s %12s %12s\n", "", "RHS", "DT", "UP");

  const KernelTraffic rhs = rhs_traffic(bs), dt = dt_traffic(bs), up = up_traffic(bs);
  std::printf("%-12s %9.1f F/B %9.1f F/B %9.2f F/B\n", "Naive", rhs.oi_naive(),
              dt.oi_naive(), up.oi_naive());
  std::printf("%-12s %9.1f F/B %9.1f F/B %9.2f F/B\n", "Reordered", rhs.oi_reordered(),
              dt.oi_reordered(), up.oi_reordered());
  std::printf("%-12s %11.1fX %11.1fX %11.1fX\n", "Factor", rhs.reorder_factor(),
              dt.reorder_factor(), up.reorder_factor());

  const MachineModel& host = host_machine();
  const auto gain = [](const MachineModel& m, const KernelTraffic& t) {
    return m.attainable_gflops(t.oi_reordered()) / m.attainable_gflops(t.oi_naive());
  };
  std::printf("%-12s %11.1fX %11.1fX %11.1fX   (roofline on BQC)\n", "Max. gain",
              gain(kBqc, rhs), gain(kBqc, dt), gain(kBqc, up));
  std::printf("%-12s %11.1fX %11.1fX %11.1fX   (roofline on %s)\n", "Max. gain",
              gain(host, rhs), gain(host, dt), gain(host, up), host.name.c_str());

  mpcf::bench::print_rule();
  std::puts("measured: DT reduction, blocked AoS streaming vs z-major strided");
  Grid grid(4, 4, 4, bs, 1.0);
  mpcf::bench::init_cloud_state(grid);
  const double t_blocked = mpcf::bench::time_best_of([&] {
    volatile double v = 0;
    for (int b = 0; b < grid.block_count(); ++b)
      v = std::max(static_cast<double>(v), kernels::block_max_speed_simd(grid.block(b)));
  });
  const double t_naive =
      mpcf::bench::time_best_of([&] { volatile double v = naive_strided_max_speed(grid); (void)v; });
  std::printf("blocked: %.3f ms   strided: %.3f ms   measured speedup: %.1fX\n",
              t_blocked * 1e3, t_naive * 1e3, t_naive / t_blocked);
  std::puts("\nShape check (paper Table 3): reordering transforms the RHS from");
  std::puts("memory-bound to compute-bound, helps DT by a small factor, and");
  std::puts("cannot help the streaming UP kernel at all.");
  return 0;
}
