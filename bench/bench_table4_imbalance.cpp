// Table 4 analogue: work imbalance of the compression pipeline stages,
// (t_max - t_min)/t_avg across workers, for Gamma and pressure dumps.
// The paper reports DEC 30%/22%, ENC 390%/2100%, IO 5%/15% — decimation is
// mildly data-dependent, encoding wildly so (stream sizes differ), I/O is
// nearly uniform. We run 4 OpenMP workers over a cloud snapshot and measure
// the same three stages (IO = per-stream file writes).
#include <omp.h>

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "compression/compressor.h"
#include "io/compressed_file.h"

using namespace mpcf;

namespace {

struct Row {
  double dec, enc, io;
};

Row measure(Grid& grid, const compression::CompressionParams& params,
            const std::string& path) {
  std::vector<compression::WorkerTimes> times;
  const auto cq = compression::compress_quantity(grid, params, &times);

  // Per-worker IO time: each worker writes its encoded blob into its region
  // of a shared file (the collective write assigns contiguous offset ranges
  // via the exclusive scan). One warm-up write removes open/metadata noise.
  std::vector<double> io_times(times.size(), 0.0);
  // mpcf-lint: allow(raw-io): the bench measures raw write() timing; SafeFile's fsync would dominate it
  std::FILE* f = std::fopen(path.c_str(), "wb");
  for (int warm = 0; warm < 2; ++warm) {
    for (std::size_t s = 0; s < cq.streams.size(); ++s) {
      Timer t;
      std::fwrite(cq.streams[s].data.data(), 1, cq.streams[s].data.size(), f);
      std::fflush(f);
      io_times[s] = t.seconds();
    }
    std::rewind(f);
  }
  std::fclose(f);
  std::remove(path.c_str());

  std::vector<double> dec, enc;
  for (const auto& t : times) {
    dec.push_back(t.dec);
    enc.push_back(t.enc);
  }
  return {imbalance(dec), imbalance(enc), imbalance(io_times)};
}

}  // namespace

int main() {
  omp_set_num_threads(4);  // four workers regardless of core count
  Grid grid(4, 4, 4, 32, 2e-3);  // 128^3 cells
  mpcf::bench::init_cloud_state(grid, 14);

  std::puts("=== Table 4 analogue: work imbalance in the data compression ===");
  std::puts("(4 workers; imbalance = (t_max - t_min)/t_avg)");

  compression::CompressionParams pg;
  pg.eps = 1e-3f * 2.3f;
  pg.quantity = Q_G;
  const Row g = measure(grid, pg, "/tmp/mpcf_t4_g");

  compression::CompressionParams pp;
  pp.derive_pressure = true;
  pp.eps = 1e-2f * 1e7f;
  const Row p = measure(grid, pp, "/tmp/mpcf_t4_p");

  std::printf("%-10s %8s %8s %8s\n", "", "DEC", "ENC", "IO");
  std::printf("%-10s %7.0f%% %7.0f%% %7.0f%%\n", "Gamma", 100 * g.dec, 100 * g.enc,
              100 * g.io);
  std::printf("%-10s %7.0f%% %7.0f%% %7.0f%%\n", "Pressure", 100 * p.dec, 100 * p.enc,
              100 * p.io);
  std::puts("\nShape check (paper Table 4): encoding imbalance dominates");
  std::puts("decimation imbalance because stream volume is data-dependent;");
  std::puts("it is worse for pressure than for Gamma.");
  return 0;
}
