// Tables 1 & 2 analogue: the BGQ installations and per-chip performance
// characteristics of the paper, next to the *measured* host machine that all
// "% of peak" figures in the other benches are reported against.
#include <cstdio>

#include "bench_util.h"
#include "perf/machine.h"
#include "perf/microbench.h"

int main() {
  using namespace mpcf;
  using namespace mpcf::perf;

  std::puts("=== Table 1: BlueGene/Q supercomputers (paper values) ===");
  std::printf("%-10s %6s %10s %10s\n", "Name", "Racks", "Cores", "PFLOP/s");
  for (const auto& i : bgq_installations())
    std::printf("%-10s %6d %10.2g %10.1f\n", i.name.c_str(), i.racks, i.cores,
                i.peak_pflops);

  std::puts("");
  std::puts("=== Table 2: machine characteristics ===");
  std::printf("%-24s %14s %14s %12s\n", "Machine", "peak GFLOP/s", "mem BW GB/s",
              "ridge F/B");
  for (const MachineModel* m : {&kBqc, &kMonteRosaNode, &kPizDaintNode})
    std::printf("%-24s %14.1f %14.1f %12.1f\n", m->name.c_str(), m->peak_gflops,
                m->mem_bw_gbs, m->ridge_point());

  mpcf::bench::print_rule();
  std::puts("measuring host (FMA peak + STREAM triad)...");
  const MachineModel& host = host_machine();
  std::printf("%-24s %14.1f %14.1f %12.1f\n", host.name.c_str(), host.peak_gflops,
              host.mem_bw_gbs, host.ridge_point());
  std::puts("\nShape check (paper): the BQC ridge point is 7.3 FLOP/B, so only");
  std::puts("kernels above ~7 FLOP/B can be compute-bound; the same qualitative");
  std::puts("split applies on the measured host.");
  return 0;
}
