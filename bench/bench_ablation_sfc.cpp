// Ablation: space-filling-curve block ordering (paper Section 5 reindexes
// blocks with an SFC; the outlook asks whether two-level indexing provides
// adequate locality). Compares row-major, Morton and Hilbert orderings by
// (a) the short-range locality of face neighbours and (b) the measured time
// of a full RHS traversal in storage order — neighbour blocks that sit close
// in memory keep ghost loads cache-warm.
#include <cstdio>

#include "bench_util.h"
#include "grid/lab.h"
#include "kernels/rhs.h"

using namespace mpcf;
using namespace mpcf::kernels;

namespace {

double neighbor_within(const BlockIndexer& idx, int window) {
  const int n = idx.nx();
  long hits = 0, pairs = 0;
  for (int z = 0; z < n; ++z)
    for (int y = 0; y < n; ++y)
      for (int x = 0; x < n - 1; ++x) {
        hits += std::abs(idx.linear(x + 1, y, z) - idx.linear(x, y, z)) <= window;
        hits += std::abs(idx.linear(y, x + 1, z) - idx.linear(y, x, z)) <= window;
        hits += std::abs(idx.linear(y, z, x + 1) - idx.linear(y, z, x)) <= window;
        pairs += 3;
      }
  return static_cast<double>(hits) / pairs;
}

double traverse_time(BlockIndexer::Curve curve) {
  Grid grid(8, 8, 8, 8, 1e-3, curve);  // 64^3 cells, 512 blocks
  mpcf::bench::init_cloud_state(grid);
  BlockLab lab;
  lab.resize(8);
  RhsWorkspace ws;
  ws.resize(8);
  const auto bc = BoundaryConditions::all(BCType::kAbsorbing);
  return mpcf::bench::time_best_of([&] {
    for (int b = 0; b < grid.block_count(); ++b) {
      int x, y, z;
      grid.indexer().coords(b, x, y, z);
      lab.load(grid, x, y, z, bc);
      rhs_block(lab, static_cast<Real>(grid.h()), 0.0f, grid.block(b), ws);
    }
  });
}

}  // namespace

int main() {
  std::puts("=== Ablation: block ordering curves ===");
  const BlockIndexer row(8, 8, 8, BlockIndexer::Curve::kRowMajor);
  const BlockIndexer mor(8, 8, 8, BlockIndexer::Curve::kMorton);
  const BlockIndexer hil(8, 8, 8, BlockIndexer::Curve::kHilbert);

  std::printf("%-12s %18s %18s %14s\n", "curve", "neighbours<=3", "neighbours<=7",
              "RHS sweep [ms]");
  struct Rowt {
    const char* name;
    const BlockIndexer* idx;
    BlockIndexer::Curve curve;
  } rows[] = {{"row-major", &row, BlockIndexer::Curve::kRowMajor},
              {"morton", &mor, BlockIndexer::Curve::kMorton},
              {"hilbert", &hil, BlockIndexer::Curve::kHilbert}};
  for (const auto& r : rows)
    std::printf("%-12s %17.0f%% %17.0f%% %14.1f\n", r.name,
                100 * neighbor_within(*r.idx, 3), 100 * neighbor_within(*r.idx, 7),
                traverse_time(r.curve) * 1e3);

  std::puts("\nHilbert maximizes short-range neighbour locality, Morton is");
  std::puts("close at larger windows and far cheaper to compute; at block");
  std::puts("granularity (1.4 MB blocks) traversal times barely differ — the");
  std::puts("paper's choice of simple Morton reindexing is confirmed.");
  return 0;
}
