// Table 10 analogue: performance portability. The paper compiles the QPX
// kernels to SSE via macro conversion and reports 37-40% of peak for the
// RHS on Cray XE6/XC30 nodes (vs 60%+ on BGQ, whose nominal peak does not
// require AVX). We (a) measure our SSE kernels on the host and (b) project
// each kernel onto the paper's machine models through the roofline using
// the kernels' operational intensities.
#include <cstdio>

#include "bench_util.h"
#include "grid/lab.h"
#include "kernels/sos.h"
#include "kernels/update.h"
#include "perf/microbench.h"
#include "perf/oi_model.h"

using namespace mpcf;
using namespace mpcf::kernels;
using namespace mpcf::perf;

int main() {
  const int bs = 32;
  Grid grid(2, 2, 2, bs, 1e-3);
  mpcf::bench::init_cloud_state(grid);
  BlockLab lab;
  lab.resize(bs);
  RhsWorkspace ws;
  ws.resize(bs);
  lab.load(grid, 0, 0, 0, BoundaryConditions::all(BCType::kAbsorbing));

  // Measured host kernel throughput, pinned to the 4-wide backend: this
  // table is the paper's SSE-portability story, so it must not silently
  // ride the AVX2 dispatch on wider hosts.
  const auto w4 = simd::Width::kW4;
  const double t_rhs = mpcf::bench::time_best_of([&] {
    for (int i = 0; i < 4; ++i)
      rhs_block(lab, static_cast<Real>(grid.h()), 0.0f, grid.block(0), ws,
                KernelImpl::kSimdFused, 5, w4);
  });
  volatile double sink = 0;
  const double t_dt = mpcf::bench::time_best_of([&] {
    for (int i = 0; i < 64; ++i) sink = block_max_speed_simd(grid.block(0), w4);
  });
  (void)sink;
  const double t_up = mpcf::bench::time_best_of([&] {
    for (int i = 0; i < 16; ++i)
      for (int b = 0; b < grid.block_count(); ++b)
        update_block_simd(grid.block(b), 1e-12f, w4);
  });
  const double rhs_gf = 4 * rhs_flops(bs) / t_rhs / 1e9;
  const double dt_gf = 64 * sos_flops(bs) / t_dt / 1e9;
  const double up_gf = 16 * grid.block_count() * update_flops(bs) / t_up / 1e9;

  const MachineModel& host = host_machine();
  std::puts("=== Table 10 analogue: performance portability ===");
  std::printf("measured on %-22s %8s %8s %8s\n", host.name.c_str(), "RHS", "DT", "UP");
  std::printf("%-34s %8.2f %8.2f %8.2f\n", "GFLOP/s (SSE kernels)", rhs_gf, dt_gf, up_gf);
  std::printf("%-34s %7.1f%% %7.1f%% %7.1f%%\n", "% of peak", 100 * rhs_gf / host.peak_gflops,
              100 * dt_gf / host.peak_gflops, 100 * up_gf / host.peak_gflops);

  std::puts("\nroofline projection of our kernel intensities onto the paper's nodes:");
  const KernelTraffic rhs = rhs_traffic(bs), dt = dt_traffic(bs), up = up_traffic(bs);
  std::printf("%-24s %10s %10s %10s\n", "machine", "RHS", "DT", "UP");
  for (const MachineModel* m : {&kBqc, &kMonteRosaNode, &kPizDaintNode, &host}) {
    std::printf("%-24s %7.0f GF %7.0f GF %7.0f GF\n", m->name.c_str(),
                m->attainable_gflops(rhs.oi_reordered()),
                m->attainable_gflops(dt.oi_reordered()),
                m->attainable_gflops(up.oi_reordered()));
  }
  std::puts("\npaper Table 10: Piz Daint 269/118/13 GFLOP/s (40/18/2% of peak),");
  std::puts("Monte Rosa 201/86/10 (37/16/2%): the SSE build cannot reach the AVX");
  std::puts("nominal peak, but the kernel ranking RHS >> DT >> UP is preserved.");
  return 0;
}
