// Figure 9 reproduction: (left) weak scaling of the node-layer kernels —
// in the paper GFLOP/s vs core count at fixed blocks per core; on this
// single-core reproduction the worker axis is OpenMP threads over a
// proportionally growing block set, which exercises the same scheduling
// code (dynamic, one block per task) even when threads share a core —
// GFLOP/s must stay ~flat per unit of work. (Right) the roofline placement
// of the three kernels: RHS near the compute roof, DT mid-slope, UP pinned
// to the memory roof.
#include <omp.h>

#include <cstdio>

#include "bench_util.h"
#include "perf/microbench.h"
#include "perf/oi_model.h"

using namespace mpcf;
using namespace mpcf::perf;

int main() {
  std::puts("=== Figure 9 (left): node-layer weak scaling (threads x blocks) ===");
  std::printf("%-10s %10s %12s %14s\n", "threads", "blocks", "time/step", "Mcells/s");
  const int bs = 16;
  for (int threads : {1, 2, 4}) {
    omp_set_num_threads(threads);
    const int nbz = threads;  // blocks grow with the worker count
    Simulation::Params params;
    params.extent = 1e-3;
    Simulation sim(2, 2, 2 * nbz, bs, params);
    mpcf::bench::init_cloud_state(sim.grid(), 6);
    sim.step();  // warm-up
    sim.profile().reset();
    const int steps = 2;
    for (int s = 0; s < steps; ++s) sim.step();
    const double t = sim.profile().total() / steps;
    std::printf("%-10d %10d %10.3f s %14.2f\n", threads, sim.grid().block_count(), t,
                sim.grid().cell_count() / t / 1e6);
  }
  omp_set_num_threads(1);
  std::puts("(single physical core: threads time-share, so time/step grows with");
  std::puts(" the block count while throughput per unit work stays ~flat — the");
  std::puts(" scheduling overhead of the dynamic one-block granularity is small)");

  std::puts("\n=== Figure 9 (right): kernels on the roofline ===");
  const MachineModel& host = host_machine();
  std::printf("host roofline: peak %.1f GFLOP/s, bw %.1f GB/s, ridge %.1f F/B\n",
              host.peak_gflops, host.mem_bw_gbs, host.ridge_point());
  std::printf("%-8s %12s %18s %14s\n", "kernel", "OI [F/B]", "attainable GF", "bound");
  const KernelTraffic k[3] = {rhs_traffic(32), dt_traffic(32), up_traffic(32)};
  const char* names[3] = {"RHS", "DT", "UP"};
  for (int i = 0; i < 3; ++i) {
    const double oi = k[i].oi_reordered();
    std::printf("%-8s %12.2f %18.1f %14s\n", names[i], oi, host.attainable_gflops(oi),
                oi > host.ridge_point() ? "compute" : "memory");
  }
  std::puts("\npaper Fig. 9: RHS and DT scale with cores; UP saturates early");
  std::puts("(low FLOP/B); on the roofline the RHS sits right of the ridge.");
  return 0;
}
